"""Unit tests for the metrics registry primitives."""

import math
import threading

import pytest

from repro.observability.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1.0)
        assert counter.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == 7.0


class TestHistogram:
    def test_empty_percentile_is_zero(self):
        histogram = Histogram()
        assert histogram.percentile(0.5) == 0.0
        assert histogram.percentile(0.99) == 0.0
        assert histogram.count == 0
        assert histogram.sum == 0.0

    def test_value_equal_to_bound_lands_in_that_bucket(self):
        # Prometheus le semantics: bucket le=X counts observations <= X.
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        histogram.observe(2.0)
        counts = histogram.bucket_counts()
        assert counts == (0, 1, 0, 0)
        cumulative = histogram.cumulative()
        assert cumulative == (0, 1, 1, 1)

    def test_overflow_goes_to_inf_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.bucket_counts() == (0, 0, 1)
        # Percentile of a +Inf-bucket-only histogram clamps to the top
        # finite bound rather than returning infinity.
        assert histogram.percentile(0.5) == 2.0

    def test_exact_sum_and_count(self):
        histogram = Histogram(bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(3.55)

    def test_percentile_interpolates_within_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0, 3.0))
        for __ in range(100):
            histogram.observe(1.5)
        p50 = histogram.percentile(0.5)
        assert 1.0 <= p50 <= 2.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, math.inf))

    def test_merge_requires_identical_bounds(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 2.0))
        b.observe(0.5)
        b.observe(5.0)
        a.merge(b)
        assert a.count == 2
        assert a.bucket_counts() == (1, 0, 1)
        with pytest.raises(ValueError):
            a.merge(Histogram(bounds=(1.0, 3.0)))

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-4
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 1.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )


class TestRegistry:
    def test_counter_children_by_labels(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "repro_test_total", "help text", ("shard", "phase")
        )
        family.labels(shard=0, phase="capture").inc()
        family.labels(shard=0, phase="capture").inc()
        family.labels(shard=1, phase="evaluate").inc(5)
        assert registry.value(
            "repro_test_total", {"shard": "0", "phase": "capture"}
        ) == 2
        # Partial label selectors sum over the matching children.
        assert registry.value("repro_test_total") == 7

    def test_wrong_labelnames_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_test_total", "", ("shard",))
        with pytest.raises(ValueError):
            family.labels(monitor="x")

    def test_redeclare_same_signature_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_same_total", "h", ("shard",))
        second = registry.counter("repro_same_total", "h", ("shard",))
        assert first is second

    def test_redeclare_mismatched_signature_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_clash_total", "h", ("shard",))
        with pytest.raises(ValueError):
            registry.gauge("repro_clash_total", "h", ("shard",))
        with pytest.raises(ValueError):
            registry.counter("repro_clash_total", "h", ("monitor",))

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad-name", "")

    def test_collect_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("repro_z_total", "")
        registry.counter("repro_a_total", "")
        names = [family.name for family in registry.collect()]
        assert names == sorted(names)

    def test_value_of_unknown_metric_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            registry.value("repro_missing_total")

    def test_histogram_helpers(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "repro_lat_seconds", "", ("shard",), buckets=(0.1, 1.0)
        )
        family.labels(shard=0).observe(0.05)
        family.labels(shard=1).observe(0.5)
        assert registry.histogram_count("repro_lat_seconds") == 2
        assert registry.histogram_sum("repro_lat_seconds") == pytest.approx(
            0.55
        )
        assert (
            registry.histogram_count("repro_lat_seconds", {"shard": "0"}) == 1
        )
        p99 = registry.histogram_percentile("repro_lat_seconds", 0.99)
        assert 0.0 < p99 <= 1.0


class TestThreadSafety:
    def test_concurrent_increments_from_threads(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_racy_total", "").labels()
        histogram = registry.histogram(
            "repro_racy_seconds", "", buckets=(0.5,)
        ).labels()
        workers = 8
        per_worker = 2000
        barrier = threading.Barrier(workers)

        def hammer():
            barrier.wait()
            for __ in range(per_worker):
                counter.inc()
                histogram.observe(0.25)

        threads = [threading.Thread(target=hammer) for __ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = workers * per_worker
        assert counter.value == total
        assert histogram.count == total
        assert histogram.bucket_counts() == (total, 0)
        assert histogram.sum == pytest.approx(0.25 * total)
