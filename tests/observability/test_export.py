"""Prometheus/JSON exporter tests."""

import io
import json
import re

import pytest

from repro.observability.export import (
    METRICS_SCHEMA,
    metric_samples,
    to_json_dict,
    to_prometheus_text,
    write_metrics_json,
)
from repro.observability.registry import MetricsRegistry


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter(
        "repro_engine_checkpoints_total", "Checkpoints run.", ("shard",)
    )
    counter.labels(shard=0).inc(3)
    counter.labels(shard=1).inc(4)
    registry.gauge("repro_engine_monitors", "Registered monitors.").labels().set(6)
    histogram = registry.histogram(
        "repro_phase_latency_seconds",
        "Per-phase latency.",
        ("phase",),
        buckets=(0.001, 0.01, 0.1),
    )
    histogram.labels(phase="capture").observe(0.005)
    histogram.labels(phase="capture").observe(0.05)
    return registry


#: One Prometheus exposition line: name{labels} value  (labels optional).
_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" [0-9eE.+-]+$|^[+]Inf$"
)


class TestPrometheusText:
    def test_every_line_is_valid_exposition_syntax(self):
        text = to_prometheus_text(sample_registry())
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith("# HELP ") or line.startswith(
                    "# TYPE "
                )
                continue
            name_part = line.split("{")[0].split(" ")[0]
            assert re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$", name_part), line
            assert " " in line, line

    def test_histogram_renders_cumulative_buckets(self):
        text = to_prometheus_text(sample_registry())
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_phase_latency_seconds_bucket")
        ]
        # Three finite bounds + the +Inf bucket for the one label set.
        assert len(lines) == 4
        assert 'le="+Inf"' in lines[-1]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts[-1] == 2
        assert "repro_phase_latency_seconds_sum" in text
        assert 'repro_phase_latency_seconds_count{phase="capture"} 2' in text

    def test_counter_lines_carry_labels(self):
        text = to_prometheus_text(sample_registry())
        assert 'repro_engine_checkpoints_total{shard="0"} 3' in text
        assert 'repro_engine_checkpoints_total{shard="1"} 4' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_esc_total", "", ("monitor",)).labels(
            monitor='we"ird\\name'
        ).inc()
        text = to_prometheus_text(registry)
        assert 'monitor="we\\"ird\\\\name"' in text


class TestJsonExport:
    def test_document_schema(self):
        payload = to_json_dict(sample_registry())
        assert payload["schema"] == METRICS_SCHEMA
        names = [entry["name"] for entry in payload["metrics"]]
        assert names == sorted(names)
        checkpoint_entries = [
            entry
            for entry in payload["metrics"]
            if entry["name"] == "repro_engine_checkpoints_total"
        ]
        assert [entry["labels"] for entry in checkpoint_entries] == [
            {"shard": "0"},
            {"shard": "1"},
        ]
        histogram_entry = next(
            entry
            for entry in payload["metrics"]
            if entry["name"] == "repro_phase_latency_seconds"
        )
        assert histogram_entry["kind"] == "histogram"
        assert histogram_entry["count"] == 2
        assert histogram_entry["sum"] == pytest.approx(0.055)
        assert len(histogram_entry["counts"]) == len(
            histogram_entry["buckets"]
        ) + 1
        for key in ("p50", "p95", "p99"):
            assert key in histogram_entry

    def test_stable_only_drops_unstable_families(self):
        payload = to_json_dict(sample_registry(), stable_only=True)
        names = {entry["name"] for entry in payload["metrics"]}
        # Histograms default to stable=False (wall-clock data).
        assert "repro_phase_latency_seconds" not in names
        assert "repro_engine_checkpoints_total" in names

    def test_write_metrics_json_accepts_path_and_stream(self, tmp_path):
        registry = sample_registry()
        target = tmp_path / "metrics.json"
        write_metrics_json(str(target), registry)
        from_path = json.loads(target.read_text())
        stream = io.StringIO()
        write_metrics_json(stream, registry)
        from_stream = json.loads(stream.getvalue())
        assert from_path == from_stream
        assert from_path["schema"] == METRICS_SCHEMA

    def test_export_is_deterministic(self):
        a = json.dumps(to_json_dict(sample_registry()), sort_keys=True)
        b = json.dumps(to_json_dict(sample_registry()), sort_keys=True)
        assert a == b


class TestMetricSamples:
    def test_reads_raw_document(self):
        payload = to_json_dict(sample_registry())
        assert metric_samples(payload) == payload["metrics"]

    def test_reads_cli_envelope(self):
        doc = to_json_dict(sample_registry())
        envelope = {"command": "metrics", "seed": 0, "results": doc}
        assert metric_samples(envelope) == doc["metrics"]

    def test_reads_bench_envelope(self):
        doc = to_json_dict(sample_registry())
        envelope = {
            "command": "overhead",
            "seed": 0,
            "results": {"bench": "overhead", "rows": [], "metrics": doc},
        }
        assert metric_samples(envelope) == doc["metrics"]

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            metric_samples({"schema": "repro-metrics/99", "metrics": []})

    def test_document_without_metrics_rejected(self):
        with pytest.raises(ValueError):
            metric_samples({"command": "demo", "results": {}})
