"""End-to-end metrics tests: instrumented engine/cluster/session/server."""

import io
import json
import warnings

import pytest

from repro.detection.config import DetectorConfig
from repro.detection.session import DetectionSession
from repro.detection.statistics import FaultStatistics
from repro.kernel.policies import RandomPolicy
from repro.kernel.sim import SimKernel
from repro.observability.export import (
    METRICS_SCHEMA,
    to_json_dict,
    to_prometheus_text,
    write_metrics_json,
)
from repro.workloads.scenarios import WorkloadSpec, build_fleet

CONFIG = DetectorConfig(interval=0.5, tmax=120.0, tio=120.0, tlimit=120.0)
SPEC = WorkloadSpec(processes=4, operations=30, think_time=0.05)


def run_session(seed=3, shards=2, durable_dir=None, **kwargs):
    kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    session = DetectionSession(
        kernel,
        config=CONFIG,
        shards=shards,
        durable_dir=durable_dir,
        **kwargs,
    )
    for run in build_fleet(kernel, 4, SPEC):
        session.register(run.monitor)
        run.spawn_all(kernel)
    session.start()
    kernel.run(until=15.0, max_steps=20_000_000)
    kernel.raise_failures()
    session.stop()
    return session


class TestEngineMetrics:
    def test_engine_families_present_with_shard_labels(self):
        session = run_session()
        registry = session.metrics()
        assert registry.value("repro_engine_checkpoints_total") > 0
        assert registry.value("repro_engine_captures_total") > 0
        assert registry.value("repro_engine_evaluations_total") > 0
        assert registry.value("repro_engine_monitors") == 4
        # Per-shard children exist for both shards.
        for shard in ("0", "1"):
            assert (
                registry.value(
                    "repro_engine_checkpoints_total", {"shard": shard}
                )
                > 0
            )

    def test_phase_histograms_cover_capture_and_evaluate(self):
        session = run_session()
        registry = session.metrics()
        for phase in ("capture", "evaluate"):
            count = registry.histogram_count(
                "repro_phase_latency_seconds", {"phase": phase}
            )
            assert count > 0, phase
        # Histogram sums mirror the legacy counters the engine keeps.
        capture_sum = registry.histogram_sum(
            "repro_phase_latency_seconds", {"phase": "capture"}
        )
        worldstop = sum(
            shard.engine.worldstop_seconds for shard in session.cluster.shards
        )
        assert capture_sum == pytest.approx(worldstop)

    def test_metrics_returns_fresh_registry_each_call(self):
        session = run_session()
        first = session.metrics()
        second = session.metrics()
        assert first is not second
        # Sampling twice must not double-count.
        assert first.value(
            "repro_engine_checkpoints_total"
        ) == second.value("repro_engine_checkpoints_total")


class TestDurableMetrics:
    def test_wal_and_recovery_families(self, tmp_path):
        session = run_session(durable_dir=tmp_path / "state")
        registry = session.metrics()
        assert registry.value("repro_wal_bytes_written_total") > 0
        assert registry.value("repro_snapshots_written_total") > 0
        assert (
            registry.histogram_count(
                "repro_phase_latency_seconds", {"phase": "wal_append"}
            )
            > 0
        )

    def test_recover_latency_observed(self, tmp_path):
        state = tmp_path / "state"
        run_session(durable_dir=state)
        kernel = SimKernel(RandomPolicy(seed=3), on_deadlock="stop")
        session = DetectionSession(
            kernel, config=CONFIG, shards=2, durable_dir=state
        )
        for run in build_fleet(kernel, 4, SPEC):
            session.register(run.monitor)
        session.recover()
        registry = session.metrics()
        assert registry.value("repro_recoveries_total") == 2
        assert (
            registry.histogram_count(
                "repro_phase_latency_seconds", {"phase": "recover"}
            )
            == 2
        )


class TestSessionExport:
    def test_prometheus_text_from_live_session(self):
        session = run_session()
        text = to_prometheus_text(session.metrics())
        assert "# TYPE repro_engine_checkpoints_total counter" in text
        assert 'repro_engine_checkpoints_total{shard="0"}' in text
        assert "# TYPE repro_phase_latency_seconds histogram" in text

    def test_metrics_path_dump_on_stop(self, tmp_path):
        target = tmp_path / "metrics.json"
        run_session(metrics_path=target)
        payload = json.loads(target.read_text())
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["metrics"]

    def test_metrics_every_requires_path(self):
        kernel = SimKernel(RandomPolicy(seed=0), on_deadlock="stop")
        with pytest.raises(ValueError):
            DetectionSession(kernel, config=CONFIG, metrics_every=1.0)
        with pytest.raises(ValueError):
            DetectionSession(
                kernel,
                config=CONFIG,
                metrics_path="x.json",
                metrics_every=0.0,
            )

    def test_periodic_dumper_writes_during_run(self, tmp_path):
        target = tmp_path / "metrics.json"
        kernel = SimKernel(RandomPolicy(seed=3), on_deadlock="stop")
        session = DetectionSession(
            kernel,
            config=CONFIG,
            shards=1,
            metrics_path=target,
            metrics_every=2.0,
        )
        for run in build_fleet(kernel, 2, SPEC):
            session.register(run.monitor)
            run.spawn_all(kernel)
        session.start()
        kernel.run(until=5.0, max_steps=20_000_000)
        # The dumper has fired at least once mid-run, before stop().
        assert target.exists()
        mid_run = json.loads(target.read_text())
        assert mid_run["schema"] == METRICS_SCHEMA
        session.stop()

    def test_sim_kernel_stable_export_is_byte_identical(self):
        def export() -> str:
            session = run_session(seed=11)
            stream = io.StringIO()
            write_metrics_json(
                stream, session.metrics(), stable_only=True
            )
            return stream.getvalue()

        assert export() == export()


class TestServerMetrics:
    def test_service_families_from_fed_frames(self):
        from repro.bench.service_bench import build_window_corpus
        from repro.service.framing import encode_frame
        from repro.service.server import DetectionServer

        frames, hello, _events = build_window_corpus(
            seed=0, rounds=6, operations=30
        )
        kernel = SimKernel(RandomPolicy(seed=0), on_deadlock="stop")
        server = DetectionServer(kernel, config=CONFIG)
        server.connect(1)
        server.feed(1, encode_frame(hello))
        server.poll()
        for payload in frames:
            server.feed(1, payload)
            server.poll()
        registry = server.metrics()
        assert registry.value("repro_service_frames_received_total") == 1 + len(
            frames
        )
        assert registry.value("repro_service_frames_sent_total") > 0
        assert registry.value("repro_service_windows_accepted_total") == len(
            frames
        )
        assert (
            registry.histogram_count(
                "repro_phase_latency_seconds", {"phase": "ack"}
            )
            > 0
        )
        assert server.stats()["frames_sent"] > 0
        server.close()


class TestStatisticsRebase:
    def test_from_engine_uses_metrics_registry(self):
        session = run_session()
        stats = FaultStatistics.from_engine(session.cluster)
        assert stats.counters["checkpoints_run"] > 0
        assert stats.counters["captures_taken"] > 0
        assert stats.counters["worldstop_seconds"] > 0
        assert "wal_bytes_written" not in stats.counters

    def test_durable_counters_included(self, tmp_path):
        session = run_session(durable_dir=tmp_path / "state")
        stats = session.statistics()
        assert stats.counters["wal_bytes_written"] > 0
        assert stats.counters["snapshots_written"] > 0

    def test_engine_counters_alias_warns_once(self):
        import repro.detection.statistics as statistics_module

        statistics_module._warned.discard(
            "FaultStatistics.engine_counters"
        )
        stats = FaultStatistics()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert stats.engine_counters == {}
            assert stats.engine_counters == {}
        deprecations = [
            warning
            for warning in caught
            if issubclass(warning.category, DeprecationWarning)
            and "engine_counters" in str(warning.message)
        ]
        assert len(deprecations) == 1

    def test_render_includes_engine_counters(self):
        session = run_session()
        stats = session.statistics()
        if stats.total_reports:
            assert "engine:" in stats.render()


class TestClusterSupervisionMetrics:
    def test_supervisor_and_pool_families_exported(self):
        session = run_session()
        registry = session.metrics()
        # Healthy run: families exist with zero values (not absent).
        assert registry.value("repro_supervisor_retries_total") == 0
        assert registry.value("repro_worker_deaths_total") == 0
        assert registry.value("repro_pool_leaks_total") == 0
        assert registry.value("repro_breaker_opened_total") == 0


def test_stable_json_roundtrip_through_bench_envelope():
    """Bench envelopes embed the same schema the gates runner reads."""
    from repro.observability.export import metric_samples

    session = run_session()
    doc = to_json_dict(session.metrics())
    entries = metric_samples(
        {"command": "metrics", "seed": 3, "results": doc}
    )
    assert {entry["name"] for entry in entries} == {
        entry["name"] for entry in doc["metrics"]
    }
