"""Gate-spec parsing and evaluation tests."""

import json

import pytest

from repro.observability.export import to_json_dict
from repro.observability.gates import (
    MetricsView,
    _parse_toml_subset,
    load_gate_specs,
    parse_gate_specs,
    render_gate_table,
    run_gates,
)
from repro.observability.registry import MetricsRegistry

SPEC_TEXT = """
# hot-path gates
[[gate]]
name = "incremental-beats-full"
metric = "repro_bench_evaluate_seconds"
labels = { mode = "incremental" }
op = "<"
threshold = 1.0
[gate.baseline]
metric = "repro_bench_evaluate_seconds"
labels = { mode = "full" }

[[gate]]
name = "hits-nonzero"
metric = "repro_bench_hits"
op = ">"
threshold = 0
"""


def view_from(registry: MetricsRegistry) -> MetricsView:
    return MetricsView(to_json_dict(registry)["metrics"])


def bench_registry(
    incremental: float = 1.0, full: float = 2.0, hits: float = 10.0
) -> MetricsRegistry:
    registry = MetricsRegistry()
    family = registry.gauge("repro_bench_evaluate_seconds", "", ("mode",))
    family.labels(mode="incremental").set(incremental)
    family.labels(mode="full").set(full)
    registry.gauge("repro_bench_hits", "").labels().set(hits)
    return registry


class TestParsing:
    def test_parse_with_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        specs = parse_gate_specs(tomllib.loads(SPEC_TEXT))
        assert [spec.name for spec in specs] == [
            "incremental-beats-full",
            "hits-nonzero",
        ]
        assert specs[0].baseline is not None
        assert specs[0].value.labels == (("mode", "incremental"),)

    def test_fallback_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        assert _parse_toml_subset(SPEC_TEXT) == tomllib.loads(SPEC_TEXT)

    def test_fallback_parser_standalone(self):
        data = _parse_toml_subset(SPEC_TEXT)
        specs = parse_gate_specs(data)
        assert len(specs) == 2
        assert specs[1].threshold == 0.0

    def test_repo_gate_specs_parse_both_ways(self):
        tomllib = pytest.importorskip("tomllib")
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        paths = [
            root / ".github" / "gates.toml",
            root / ".github" / "gates" / "wal.toml",
            root / ".github" / "gates" / "scaling-procs.toml",
        ]
        for path in paths:
            raw = path.read_text()
            assert _parse_toml_subset(raw) == tomllib.loads(raw), path
            assert parse_gate_specs(_parse_toml_subset(raw)), path

    def test_load_gate_specs_from_file(self, tmp_path):
        path = tmp_path / "gates.toml"
        path.write_text(SPEC_TEXT)
        specs = load_gate_specs(str(path))
        assert len(specs) == 2

    def test_missing_name_rejected(self):
        with pytest.raises(ValueError):
            parse_gate_specs(
                {"gate": [{"metric": "m", "op": "<", "threshold": 1}]}
            )

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            parse_gate_specs(
                {
                    "gate": [
                        {
                            "name": "g",
                            "metric": "m",
                            "op": "~",
                            "threshold": 1,
                        }
                    ]
                }
            )

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            parse_gate_specs({})


class TestEvaluation:
    def specs(self):
        return parse_gate_specs(_parse_toml_subset(SPEC_TEXT))

    def test_ratio_gate_passes_under_baseline(self):
        results = run_gates(self.specs(), view_from(bench_registry()))
        assert [result.status for result in results] == ["pass", "pass"]
        ratio_result = results[0]
        assert ratio_result.compared == pytest.approx(0.5)

    def test_ratio_gate_fails_over_baseline(self):
        view = view_from(bench_registry(incremental=3.0, full=2.0))
        results = run_gates(self.specs(), view)
        assert results[0].status == "fail"

    def test_zero_baseline_fails(self):
        view = view_from(bench_registry(full=0.0))
        results = run_gates(self.specs(), view)
        assert results[0].status == "fail"
        assert "zero" in results[0].detail

    def test_missing_metric_fails_not_passes(self):
        registry = MetricsRegistry()
        registry.gauge("repro_bench_hits", "").labels().set(1)
        results = run_gates(self.specs(), view_from(registry))
        assert results[0].status == "fail"
        assert "no metric matches" in results[0].detail

    def test_ambiguous_selector_fails(self):
        registry = bench_registry()
        specs = parse_gate_specs(
            {
                "gate": [
                    {
                        "name": "ambiguous",
                        "metric": "repro_bench_evaluate_seconds",
                        "op": ">",
                        "threshold": 0,
                    }
                ]
            }
        )
        results = run_gates(specs, view_from(registry))
        assert results[0].status == "fail"
        assert "ambiguous" in results[0].detail

    def test_when_clause_skips(self):
        registry = bench_registry()
        registry.gauge("repro_bench_cpu_count", "").labels().set(1)
        specs = parse_gate_specs(
            {
                "gate": [
                    {
                        "name": "needs-cores",
                        "metric": "repro_bench_hits",
                        "op": ">",
                        "threshold": 0,
                        "when": {
                            "metric": "repro_bench_cpu_count",
                            "op": ">=",
                            "threshold": 4,
                        },
                    }
                ]
            }
        )
        results = run_gates(specs, view_from(registry))
        assert results[0].status == "skip"
        assert results[0].passed  # skip is not a violation

    def test_when_clause_met_evaluates_gate(self):
        registry = bench_registry()
        registry.gauge("repro_bench_cpu_count", "").labels().set(8)
        specs = parse_gate_specs(
            {
                "gate": [
                    {
                        "name": "needs-cores",
                        "metric": "repro_bench_hits",
                        "op": ">",
                        "threshold": 0,
                        "when": {
                            "metric": "repro_bench_cpu_count",
                            "op": ">=",
                            "threshold": 4,
                        },
                    }
                ]
            }
        )
        results = run_gates(specs, view_from(registry))
        assert results[0].status == "pass"

    def test_when_lookup_failure_is_a_violation(self):
        specs = parse_gate_specs(
            {
                "gate": [
                    {
                        "name": "needs-cores",
                        "metric": "repro_bench_hits",
                        "op": ">",
                        "threshold": 0,
                        "when": {
                            "metric": "repro_bench_missing",
                            "op": ">=",
                            "threshold": 4,
                        },
                    }
                ]
            }
        )
        results = run_gates(specs, view_from(bench_registry()))
        assert results[0].status == "fail"

    def test_histogram_percentile_gate(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_phase_latency_seconds", "", buckets=(0.001, 0.01, 0.1)
        ).labels()
        for __ in range(100):
            histogram.observe(0.005)
        specs = parse_gate_specs(
            {
                "gate": [
                    {
                        "name": "p99-bounded",
                        "metric": "repro_phase_latency_seconds",
                        "percentile": 99,
                        "op": "<",
                        "threshold": 0.1,
                    }
                ]
            }
        )
        results = run_gates(specs, view_from(registry))
        assert results[0].status == "pass"
        assert 0.001 <= results[0].value <= 0.01

    def test_histogram_without_percentile_fails(self):
        registry = MetricsRegistry()
        registry.histogram(
            "repro_phase_latency_seconds", "", buckets=(0.001,)
        ).labels().observe(0.0005)
        specs = parse_gate_specs(
            {
                "gate": [
                    {
                        "name": "histogram-needs-percentile",
                        "metric": "repro_phase_latency_seconds",
                        "op": "<",
                        "threshold": 1,
                    }
                ]
            }
        )
        results = run_gates(specs, view_from(registry))
        assert results[0].status == "fail"
        assert "percentile" in results[0].detail


class TestRendering:
    def test_table_shows_status_and_footer(self):
        results = run_gates(
            parse_gate_specs(_parse_toml_subset(SPEC_TEXT)),
            view_from(bench_registry()),
        )
        table = render_gate_table(results)
        assert "PASS" in table
        assert "2 passed, 0 failed, 0 skipped of 2 gate(s)" in table


class TestMetricsViewFiles:
    def test_from_files_merges_documents(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        registry_a = MetricsRegistry()
        registry_a.gauge("repro_bench_hits", "").labels().set(1)
        registry_b = MetricsRegistry()
        registry_b.gauge("repro_bench_misses", "").labels().set(2)
        a.write_text(json.dumps(to_json_dict(registry_a)))
        b.write_text(
            json.dumps(
                {
                    "command": "overhead",
                    "seed": 0,
                    "results": {"metrics": to_json_dict(registry_b)},
                }
            )
        )
        view = MetricsView.from_files([str(a), str(b)])
        names = {entry["name"] for entry in view.entries}
        assert names == {"repro_bench_hits", "repro_bench_misses"}
