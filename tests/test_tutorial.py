"""The tutorial's JobQueue (docs/TUTORIAL.md), verified end to end.

If this file needs changing, update the tutorial to match.
"""

import pytest

from repro import (
    DetectorConfig,
    FaultClass,
    FaultDetector,
    HistoryDatabase,
    MonitorBase,
    MonitorDeclaration,
    MonitorMetrics,
    MonitorType,
    TriggeredHooks,
    check_full_trace,
    detector_process,
    procedure,
)
from repro.kernel import Delay, RandomPolicy, SimKernel, explore_seeds


class JobQueue(MonitorBase):
    """Two-lane job queue: urgent jobs overtake normal ones."""

    def __init__(self, kernel, capacity, **kwargs):
        self._capacity = capacity
        self._urgent = []
        self._normal = []
        super().__init__(kernel, **kwargs)

    def declare(self):
        return MonitorDeclaration(
            name="jobqueue",
            mtype=MonitorType.COMMUNICATION_COORDINATOR,
            procedures=("Send", "Receive"),
            conditions=("full", "empty"),
            rmax=self._capacity,
        )

    def resource_count(self):
        return self._capacity - len(self._urgent) - len(self._normal)

    @procedure("Send")
    def submit(self, job, urgent=False):
        if self.resource_count() == 0:
            yield from self.wait("full")
        (self._urgent if urgent else self._normal).append(job)
        self.signal_exit("empty")

    @procedure("Receive")
    def take(self):
        if self.resource_count() == self._capacity:
            yield from self.wait("empty")
        lane = self._urgent or self._normal
        job = lane.pop(0)
        self.signal_exit("full")
        return job


def submitter(queue, jobs):
    for job, urgent in jobs:
        yield Delay(0.05)
        yield from queue.submit(job, urgent=urgent)


def worker(queue, count, sink):
    for __ in range(count):
        yield Delay(0.08)
        sink.append((yield from queue.take()))


class TestJobQueue:
    def test_urgent_jobs_overtake(self, fifo_kernel):
        queue = JobQueue(fifo_kernel, capacity=8)
        taken = []

        def fill_then_drain():
            yield from queue.submit("n1")
            yield from queue.submit("n2")
            yield from queue.submit("u1", urgent=True)
            for __ in range(3):
                taken.append((yield from queue.take()))

        fifo_kernel.spawn(fill_then_drain())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert taken == ["u1", "n1", "n2"]

    def test_clean_run_with_detector_and_metrics(self):
        kernel = SimKernel(RandomPolicy(seed=42), on_deadlock="stop")
        queue = JobQueue(
            kernel, capacity=4, history=HistoryDatabase(retain_full_trace=True)
        )
        detector = FaultDetector(
            queue, DetectorConfig(interval=0.5, tmax=10.0, tio=20.0)
        )
        metrics = MonitorMetrics.attach(queue)
        sink = []
        jobs = [(f"j{i}", i % 3 == 0) for i in range(20)]
        kernel.spawn(submitter(queue, jobs))
        kernel.spawn(worker(queue, 20, sink))
        kernel.spawn(detector_process(detector))
        kernel.run(until=30)
        kernel.raise_failures()
        assert detector.clean
        assert len(sink) == 20
        assert metrics.calls == {"Send": 20, "Receive": 20}
        offline = check_full_trace(
            queue.declaration,
            queue.history.full_trace,
            final_state=queue.snapshot(),
        )
        assert offline == []

    def test_injected_fault_is_implicated(self):
        kernel = SimKernel(RandomPolicy(seed=42), on_deadlock="stop")
        hooks = TriggeredHooks("fake_resume")
        queue = JobQueue(
            kernel, capacity=2, history=HistoryDatabase(), hooks=hooks
        )
        hooks.core = queue.monitor.core
        detector = FaultDetector(queue, DetectorConfig(interval=0.3))
        sink = []
        jobs = [(f"j{i}", False) for i in range(15)]
        kernel.spawn(submitter(queue, jobs))
        kernel.spawn(worker(queue, 15, sink))
        kernel.spawn(detector_process(detector))
        kernel.run(until=30)
        assert hooks.fired == 1
        assert FaultClass.SIGEXIT_NO_RESUME in detector.implicated_faults()

    def test_seed_exploration(self):
        def build(kernel):
            queue = JobQueue(kernel, capacity=2)
            sink = []
            jobs = [(f"j{i}", i % 2 == 0) for i in range(8)]
            kernel.spawn(submitter(queue, jobs))
            kernel.spawn(worker(queue, 8, sink))
            return queue

        def check(kernel, queue):
            if queue.resource_count() != 2:
                return "queue not drained"
            return None

        result = explore_seeds(build, check, seeds=range(40))
        assert result.all_passed, result.failures
