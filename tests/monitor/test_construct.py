"""Tests for the kernel-bound Monitor and the @procedure decorator."""

import pytest

from repro.history import HistoryDatabase
from repro.kernel import Delay, SimKernel
from repro.monitor import (
    Monitor,
    MonitorBase,
    MonitorDeclaration,
    MonitorType,
    procedure,
)
from repro.monitor.procedures import declared_procedures


def make_declaration(**overrides):
    base = dict(
        name="m",
        mtype=MonitorType.OPERATION_MANAGER,
        procedures=("Op", "Other"),
        conditions=("ready",),
    )
    base.update(overrides)
    return MonitorDeclaration(**base)


class TestRawMonitor:
    def test_enter_exit_cycle(self, fifo_kernel):
        monitor = Monitor(fifo_kernel, make_declaration())
        log = []

        def body():
            yield from monitor.enter("Op")
            log.append(monitor.core.running_pids)
            monitor.exit()
            log.append(monitor.core.running_pids)

        fifo_kernel.spawn(body())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert log == [(1,), ()]

    def test_mutual_exclusion_two_processes(self, fifo_kernel):
        monitor = Monitor(fifo_kernel, make_declaration())
        overlaps = []

        def body():
            yield from monitor.enter("Op")
            assert len(monitor.core.running_pids) == 1
            overlaps.append(monitor.core.running_pids)
            yield Delay(0.5)
            monitor.exit()

        fifo_kernel.spawn(body())
        fifo_kernel.spawn(body())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert len(overlaps) == 2

    def test_wait_and_signal_exit(self, fifo_kernel):
        monitor = Monitor(fifo_kernel, make_declaration())
        log = []

        def waiter():
            yield from monitor.enter("Op")
            yield from monitor.wait("ready")
            log.append("resumed")
            monitor.exit()

        def signaller():
            yield Delay(1.0)
            yield from monitor.enter("Other")
            monitor.signal_exit("ready")
            log.append("signalled")

        fifo_kernel.spawn(waiter())
        fifo_kernel.spawn(signaller())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert log == ["signalled", "resumed"]

    def test_waiting_count(self, fifo_kernel):
        monitor = Monitor(fifo_kernel, make_declaration())
        counts = []

        def waiter():
            yield from monitor.enter("Op")
            yield from monitor.wait("ready")
            monitor.exit()

        def observer():
            yield Delay(1.0)
            counts.append(monitor.waiting("ready"))
            yield from monitor.enter("Other")
            monitor.signal_exit("ready")

        fifo_kernel.spawn(waiter())
        fifo_kernel.spawn(observer())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert counts == [1]

    def test_op_accounting(self, fifo_kernel):
        monitor = Monitor(fifo_kernel, make_declaration())

        def body():
            yield from monitor.enter("Op")
            monitor.exit()

        fifo_kernel.spawn(body())
        fifo_kernel.run()
        assert monitor.op_count == 2
        assert monitor.op_seconds >= 0.0


class Counter(MonitorBase):
    """Tiny monitor used to exercise the @procedure decorator."""

    def __init__(self, kernel, **kwargs):
        self.value = 0
        super().__init__(kernel, **kwargs)

    def declare(self):
        return MonitorDeclaration(
            name="counter",
            mtype=MonitorType.OPERATION_MANAGER,
            procedures=("Increment", "Read", "AwaitAtLeast", "Crash"),
            conditions=("grew",),
        )

    @procedure("Increment")
    def increment(self):
        self.value += 1
        self.signal_exit("grew")
        return
        yield  # pragma: no cover

    @procedure("Read")
    def read(self):
        # Plain (non-generator) body: never blocks.
        return self.value

    @procedure("AwaitAtLeast")
    def await_at_least(self, threshold):
        while self.value < threshold:
            yield from self.wait("grew")
        return self.value

    @procedure("Crash")
    def crash(self):
        raise RuntimeError("died inside")
        yield  # pragma: no cover


class TestProcedureDecorator:
    def test_plain_body_supported(self, fifo_kernel):
        counter = Counter(fifo_kernel, history=HistoryDatabase())
        results = []

        def body():
            value = yield from counter.read()
            results.append(value)

        fifo_kernel.spawn(body())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert results == [0]
        assert counter.monitor.core.idle

    def test_auto_exit_when_no_signal(self, fifo_kernel):
        counter = Counter(fifo_kernel, history=HistoryDatabase(retain_full_trace=True))

        def body():
            yield from counter.await_at_least(0)

        fifo_kernel.spawn(body())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        kinds = [e.kind.value for e in counter.history.full_trace]
        assert kinds == ["Enter", "Signal-Exit"]

    def test_return_value_propagates(self, fifo_kernel):
        counter = Counter(fifo_kernel)
        results = []

        def incrementer():
            for __ in range(3):
                yield Delay(0.2)
                yield from counter.increment()

        def awaiter():
            value = yield from counter.await_at_least(3)
            results.append(value)

        fifo_kernel.spawn(incrementer())
        fifo_kernel.spawn(awaiter())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert results == [3]

    def test_crash_leaves_process_inside(self, fifo_kernel):
        """A raising body terminates its process inside the monitor —
        fault I.c.4, deliberately not auto-repaired."""
        counter = Counter(fifo_kernel)

        def body():
            yield from counter.crash()

        pid = fifo_kernel.spawn(body())
        fifo_kernel.run()
        assert pid in fifo_kernel.failures()
        assert counter.monitor.core.is_inside(pid)

    def test_declared_procedures_discovery(self):
        assert set(declared_procedures(Counter)) == {
            "Increment",
            "Read",
            "AwaitAtLeast",
            "Crash",
        }

    def test_explicit_exit_not_doubled(self, fifo_kernel):
        counter = Counter(fifo_kernel, history=HistoryDatabase(retain_full_trace=True))

        def body():
            yield from counter.increment()

        fifo_kernel.spawn(body())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        exits = [
            e for e in counter.history.full_trace if e.kind.value == "Signal-Exit"
        ]
        assert len(exits) == 1
