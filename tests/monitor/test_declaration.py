"""Unit tests for monitor declarations, classification and disciplines."""

import pytest

from repro.errors import DeclarationError
from repro.monitor import Discipline, MonitorDeclaration, MonitorType


def make(**overrides):
    base = dict(
        name="m",
        mtype=MonitorType.OPERATION_MANAGER,
        procedures=("Op",),
    )
    base.update(overrides)
    return MonitorDeclaration(**base)


class TestValidation:
    def test_minimal_declaration(self):
        decl = make()
        assert decl.name == "m"
        assert decl.has_procedure("Op")
        assert not decl.has_procedure("Other")

    def test_empty_name_rejected(self):
        with pytest.raises(DeclarationError):
            make(name="")

    def test_no_procedures_rejected(self):
        with pytest.raises(DeclarationError):
            make(procedures=())

    def test_duplicate_procedures_rejected(self):
        with pytest.raises(DeclarationError):
            make(procedures=("A", "A"))

    def test_duplicate_conditions_rejected(self):
        with pytest.raises(DeclarationError):
            make(conditions=("c", "c"))

    def test_name_collision_between_kinds_rejected(self):
        with pytest.raises(DeclarationError):
            make(procedures=("X",), conditions=("X",))

    def test_coordinator_requires_rmax(self):
        with pytest.raises(DeclarationError):
            make(
                mtype=MonitorType.COMMUNICATION_COORDINATOR,
                procedures=("Send", "Receive"),
            )

    def test_nonpositive_rmax_rejected(self):
        with pytest.raises(DeclarationError):
            make(rmax=0)

    def test_conditions_membership(self):
        decl = make(conditions=("full", "empty"))
        assert decl.has_condition("full")
        assert not decl.has_condition("ready")


class TestRoles:
    def test_acquire_release_detection(self):
        decl = make(
            mtype=MonitorType.RESOURCE_ALLOCATOR,
            procedures=("Request", "Release", "Stats"),
        )
        assert decl.acquire_procedures == ("Request",)
        assert decl.release_procedures == ("Release",)

    def test_acquire_alias(self):
        decl = make(procedures=("Acquire", "Release"))
        assert decl.acquire_procedures == ("Acquire",)


class TestRender:
    def test_render_matches_paper_form(self):
        decl = make(
            name="allocator",
            mtype=MonitorType.RESOURCE_ALLOCATOR,
            procedures=("Request", "Release"),
            conditions=("free",),
            call_order="(Request ; Release)*",
        )
        text = decl.render()
        assert text.startswith("allocator: Monitor")
        assert "condition free;" in text
        assert "order (Request ; Release)*;" in text
        assert text.endswith("End allocator.")


class TestClassification:
    def test_algorithm_selection_flags(self):
        assert MonitorType.COMMUNICATION_COORDINATOR.needs_resource_checking
        assert not MonitorType.COMMUNICATION_COORDINATOR.needs_order_checking
        assert MonitorType.RESOURCE_ALLOCATOR.needs_order_checking
        assert not MonitorType.RESOURCE_ALLOCATOR.needs_resource_checking
        assert not MonitorType.OPERATION_MANAGER.needs_order_checking
        assert not MonitorType.OPERATION_MANAGER.needs_resource_checking

    def test_descriptions_nonempty(self):
        for mtype in MonitorType:
            assert mtype.describe()


class TestDisciplines:
    def test_default_discipline_is_signal_exit(self):
        assert make().discipline is Discipline.SIGNAL_EXIT

    def test_discipline_flags(self):
        assert Discipline.SIGNAL_EXIT.waiter_runs_immediately
        assert Discipline.SIGNAL_AND_WAIT.waiter_runs_immediately
        assert not Discipline.SIGNAL_AND_CONTINUE.waiter_runs_immediately
        assert Discipline.SIGNAL_AND_CONTINUE.signaller_keeps_monitor
        assert not Discipline.SIGNAL_AND_WAIT.signaller_keeps_monitor


class TestParse:
    def round_trip(self, **overrides):
        decl = make(**overrides)
        return MonitorDeclaration.parse(decl.render()), decl

    def test_minimal_round_trip(self):
        parsed, original = self.round_trip()
        assert parsed == original

    def test_full_round_trip(self):
        parsed, original = self.round_trip(
            name="allocator",
            mtype=MonitorType.RESOURCE_ALLOCATOR,
            procedures=("Request", "Release"),
            conditions=("free", "busy"),
            call_order="(Request ; Release)*",
        )
        assert parsed == original

    def test_rmax_and_discipline_round_trip(self):
        parsed, original = self.round_trip(
            mtype=MonitorType.COMMUNICATION_COORDINATOR,
            procedures=("Send", "Receive"),
            conditions=("full", "empty"),
            rmax=4,
            discipline=Discipline.SIGNAL_AND_CONTINUE,
        )
        assert parsed == original

    def test_whitespace_tolerated(self):
        text = """
            m: Monitor (resource-operation-manager);
              procedure Op;
            End m.
        """
        parsed = MonitorDeclaration.parse(text)
        assert parsed.name == "m"
        assert parsed.procedures == ("Op",)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "m: Monitor (resource-operation-manager);",
            "m: Monitor (bogus-type);\n  procedure Op;\nEnd m.",
            "m: Monitor (resource-operation-manager);\n  procedure Op;\nEnd other.",
            "m: Monitor (resource-operation-manager);\n  frobnicate X;\nEnd m.",
            "m: Monitor (resource-operation-manager);\n  procedure Op;\n  rmax = many;\nEnd m.",
            "m: Monitor (resource-operation-manager);\n  procedure Op;\n  discipline telepathy;\nEnd m.",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(DeclarationError):
            MonitorDeclaration.parse(text)
