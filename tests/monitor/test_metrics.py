"""Tests for the monitor metrics observer."""

import pytest

from repro.apps import BoundedBuffer, HoareBoundedBuffer
from repro.history import HistoryDatabase
from repro.kernel import Delay, RandomPolicy, SimKernel
from repro.monitor.metrics import DurationStats, MonitorMetrics
from tests.conftest import consumer, producer


class TestDurationStats:
    def test_empty(self):
        stats = DurationStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.percentile(0.95) == 0.0

    def test_accumulation(self):
        stats = DurationStats()
        for value in (1.0, 3.0, 2.0):
            stats.add(value)
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.maximum == 3.0
        assert stats.percentile(0.0) == 1.0
        assert stats.percentile(0.99) == 3.0


class TestAttachment:
    def test_requires_history(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2)
        with pytest.raises(ValueError):
            MonitorMetrics.attach(buffer)

    def test_attach_subscribes(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        metrics = MonitorMetrics.attach(buffer)
        kernel.spawn(producer(buffer, 3))
        kernel.spawn(consumer(buffer, 3))
        kernel.run(until=5)
        kernel.raise_failures()
        assert metrics.total_enters == 6
        assert metrics.calls == {"Send": 3, "Receive": 3}


class TestMeasurements:
    def test_service_time_measured(self, kernel):
        buffer = BoundedBuffer(
            kernel, capacity=4, history=HistoryDatabase(), service_time=0.1
        )
        metrics = MonitorMetrics.attach(buffer)
        kernel.spawn(producer(buffer, 5, delay=0.5))
        kernel.spawn(consumer(buffer, 5, delay=0.5))
        kernel.run(until=20)
        kernel.raise_failures()
        # Each completed op held the monitor for its 0.1 service delay; an
        # op that Waits contributes an extra (legitimate) zero-length span
        # for its time inside before releasing the monitor.
        assert metrics.service.count >= 10
        assert metrics.service.maximum == pytest.approx(0.1, rel=0.05)
        assert metrics.service.percentile(0.5) == pytest.approx(0.1, rel=0.05)

    def test_entry_wait_and_contention(self, fifo_kernel):
        buffer = BoundedBuffer(
            fifo_kernel, capacity=4, history=HistoryDatabase(), service_time=1.0
        )
        metrics = MonitorMetrics.attach(buffer)

        def sender(start):
            yield Delay(start)
            yield from buffer.send("x")

        fifo_kernel.spawn(sender(0.0))   # holds the monitor 1s
        fifo_kernel.spawn(sender(0.5))   # queues for ~0.5s
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert metrics.contended_enters == 1
        assert metrics.immediate_enters == 1
        assert metrics.contention_ratio == pytest.approx(0.5)
        assert metrics.entry_wait.count == 1
        assert metrics.entry_wait.mean == pytest.approx(0.5, abs=0.01)

    def test_condition_wait_measured(self, fifo_kernel):
        buffer = BoundedBuffer(fifo_kernel, capacity=2, history=HistoryDatabase())
        metrics = MonitorMetrics.attach(buffer)

        def receiver():
            yield from buffer.receive()  # waits ~2s on "empty"

        def sender():
            yield Delay(2.0)
            yield from buffer.send("x")

        fifo_kernel.spawn(receiver())
        fifo_kernel.spawn(sender())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert metrics.cond_wait["empty"].count == 1
        assert metrics.cond_wait["empty"].mean == pytest.approx(2.0, abs=0.01)

    def test_hoare_discipline_supported(self, kernel):
        buffer = HoareBoundedBuffer(
            kernel, capacity=2, history=HistoryDatabase()
        )
        metrics = MonitorMetrics.attach(buffer)
        kernel.spawn(producer(buffer, 5))
        kernel.spawn(consumer(buffer, 5))
        kernel.run(until=10)
        kernel.raise_failures()
        assert metrics.total_enters == 10


class TestRendering:
    def test_render_contains_populations(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        metrics = MonitorMetrics.attach(buffer)
        kernel.spawn(producer(buffer, 2))
        kernel.spawn(consumer(buffer, 2))
        kernel.run(until=5)
        kernel.raise_failures()
        text = metrics.render()
        assert "entry wait" in text
        assert "service" in text
        assert "Send" in text
        assert "contention" in text
