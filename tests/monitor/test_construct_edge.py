"""Edge-case tests for the Monitor construct and MonitorBase validation."""

import pytest

from repro.errors import DeclarationError, MonitorUsageError
from repro.history import HistoryDatabase
from repro.kernel import Delay, SimKernel
from repro.monitor import (
    Discipline,
    Monitor,
    MonitorBase,
    MonitorDeclaration,
    MonitorType,
    procedure,
)


def declaration(**overrides):
    base = dict(
        name="m",
        mtype=MonitorType.OPERATION_MANAGER,
        procedures=("Op",),
        conditions=("ready",),
    )
    base.update(overrides)
    return MonitorDeclaration(**base)


class TestSignalOnConstruct:
    def test_signal_under_signal_exit_discipline_exits(self, fifo_kernel):
        """Monitor.signal degrades to signal_exit under the default
        discipline — the signaller leaves the monitor."""
        monitor = Monitor(fifo_kernel, declaration())
        states = []

        def body():
            yield from monitor.enter("Op")
            yield from monitor.signal("ready")  # exits immediately
            states.append(monitor.core.is_inside(fifo_kernel.current_pid()))

        fifo_kernel.spawn(body())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert states == [False]

    def test_nested_monitor_call_rejected(self, fifo_kernel):
        monitor = Monitor(fifo_kernel, declaration())

        def body():
            yield from monitor.enter("Op")
            yield from monitor.enter("Op")  # nested: must raise

        pid = fifo_kernel.spawn(body())
        fifo_kernel.run()
        assert isinstance(
            fifo_kernel.failures()[pid], MonitorUsageError
        )

    def test_exit_without_enter_rejected(self, fifo_kernel):
        monitor = Monitor(fifo_kernel, declaration())

        def body():
            monitor.exit()
            return
            yield

        pid = fifo_kernel.spawn(body())
        fifo_kernel.run()
        assert isinstance(fifo_kernel.failures()[pid], MonitorUsageError)


class TestMonitorBaseValidation:
    def test_undeclared_procedure_rejected_at_construction(self, fifo_kernel):
        class Sneaky(MonitorBase):
            def declare(self):
                return declaration(procedures=("Op",))

            @procedure("Undeclared")
            def rogue(self):
                return None

        with pytest.raises(DeclarationError, match="Undeclared"):
            Sneaky(fifo_kernel)

    def test_declare_must_be_overridden(self, fifo_kernel):
        class Bare(MonitorBase):
            pass

        with pytest.raises(NotImplementedError):
            Bare(fifo_kernel)

    def test_declared_but_unimplemented_is_fine(self, fifo_kernel):
        class Partial(MonitorBase):
            def declare(self):
                return declaration(procedures=("Op", "Extra"))

            @procedure("Op")
            def op(self):
                return None

        monitor = Partial(fifo_kernel)  # "Extra" may be driven manually
        assert monitor.name == "m"

    def test_repr(self, fifo_kernel):
        class Simple(MonitorBase):
            def declare(self):
                return declaration()

        monitor = Simple(fifo_kernel)
        assert "Simple" in repr(monitor)
        assert "Monitor(" in repr(monitor.monitor)


class TestOpAccounting:
    def test_counts_cover_all_primitives(self, fifo_kernel):
        monitor = Monitor(fifo_kernel, declaration())

        def waiter():
            yield from monitor.enter("Op")      # 1
            yield from monitor.wait("ready")    # 2
            monitor.exit()                      # 3

        def signaller():
            yield Delay(1.0)
            yield from monitor.enter("Op")      # 4
            monitor.signal_exit("ready")        # 5

        fifo_kernel.spawn(waiter())
        fifo_kernel.spawn(signaller())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert monitor.op_count == 5
        assert monitor.op_seconds > 0


class TestHistoryAttachment:
    def test_attach_opens_with_initial_snapshot(self, fifo_kernel):
        history = HistoryDatabase(retain_full_trace=True)
        Monitor(fifo_kernel, declaration(), history=history)
        assert history.opened
        assert history.last_state is not None
        assert history.last_state.running == ()

    def test_shared_history_across_monitors_opens_once(self, fifo_kernel):
        """Two monitors may share one database (sequence numbers interleave);
        only the first attachment installs the base snapshot."""
        history = HistoryDatabase()
        Monitor(fifo_kernel, declaration(name="a"), history=history)
        Monitor(fifo_kernel, declaration(name="b"), history=history)
        assert history.opened
