"""Unit tests for the pure monitor core state machine (no kernel)."""

import pytest

from repro.errors import (
    MonitorUsageError,
    NotInsideMonitorError,
    UnknownConditionError,
    UnknownProcedureError,
)
from repro.history import HistoryDatabase
from repro.monitor import Discipline, MonitorCore, MonitorDeclaration, MonitorType


class FakeClock:
    def __init__(self):
        self.time = 0.0

    def __call__(self):
        return self.time

    def tick(self, amount=1.0):
        self.time += amount


def make_core(
    *,
    conditions=("ready",),
    procedures=("Op", "Other"),
    discipline=Discipline.SIGNAL_EXIT,
    history=None,
    hooks=None,
    probe=None,
):
    declaration = MonitorDeclaration(
        name="m",
        mtype=MonitorType.OPERATION_MANAGER,
        procedures=procedures,
        conditions=conditions,
        discipline=discipline,
    )
    clock = FakeClock()
    core = MonitorCore(
        declaration, now=clock, history=history, hooks=hooks, resource_probe=probe
    )
    return core, clock


class TestEnter:
    def test_free_monitor_admits_immediately(self):
        core, __ = make_core()
        transition = core.enter(1, "Op")
        assert not transition.caller_blocks
        assert core.running_pids == (1,)
        assert core.is_inside(1)

    def test_busy_monitor_queues(self):
        core, __ = make_core()
        core.enter(1, "Op")
        transition = core.enter(2, "Op")
        assert transition.caller_blocks
        assert core.entry_pids == (2,)
        assert core.running_pids == (1,)

    def test_unknown_procedure_rejected(self):
        core, __ = make_core()
        with pytest.raises(UnknownProcedureError):
            core.enter(1, "Nope")

    def test_reentry_rejected(self):
        core, __ = make_core()
        core.enter(1, "Op")
        with pytest.raises(MonitorUsageError):
            core.enter(1, "Other")

    def test_reentry_from_queue_rejected(self):
        core, __ = make_core()
        core.enter(1, "Op")
        core.enter(2, "Op")
        with pytest.raises(MonitorUsageError):
            core.enter(2, "Op")


class TestWait:
    def test_wait_moves_to_condition_queue(self):
        core, __ = make_core()
        core.enter(1, "Op")
        transition = core.wait(1, "ready")
        assert transition.caller_blocks
        assert core.cond_pids("ready") == (1,)
        assert core.running_pids == ()

    def test_wait_admits_entry_head(self):
        core, __ = make_core()
        core.enter(1, "Op")
        core.enter(2, "Op")
        transition = core.wait(1, "ready")
        assert transition.wake == (2,)
        assert core.running_pids == (2,)
        assert core.entry_pids == ()

    def test_wait_requires_being_inside(self):
        core, __ = make_core()
        with pytest.raises(NotInsideMonitorError):
            core.wait(1, "ready")

    def test_wait_unknown_condition(self):
        core, __ = make_core()
        core.enter(1, "Op")
        with pytest.raises(UnknownConditionError):
            core.wait(1, "nope")


class TestSignalExit:
    def test_signal_exit_hands_monitor_to_waiter(self):
        core, __ = make_core()
        core.enter(1, "Op")
        core.wait(1, "ready")
        core.enter(2, "Op")
        transition = core.signal_exit(2, "ready")
        assert not transition.caller_blocks
        assert transition.wake == (1,)
        assert core.running_pids == (1,)
        assert core.cond_pids("ready") == ()

    def test_signal_exit_without_waiter_admits_entry(self):
        core, __ = make_core()
        core.enter(1, "Op")
        core.enter(2, "Op")
        transition = core.signal_exit(1, "ready")
        assert transition.wake == (2,)
        assert core.running_pids == (2,)

    def test_plain_exit(self):
        core, __ = make_core()
        core.enter(1, "Op")
        transition = core.exit(1)
        assert core.running_pids == ()
        assert transition.wake == ()

    def test_exit_requires_being_inside(self):
        core, __ = make_core()
        with pytest.raises(NotInsideMonitorError):
            core.exit(1)

    def test_fifo_condition_queue(self):
        core, __ = make_core()
        for pid in (1, 2, 3):
            core.enter(pid, "Op")
            core.wait(pid, "ready")
        resumed = []
        for pid in (10, 11, 12):
            core.enter(pid, "Op")
            transition = core.signal_exit(pid, "ready")
            resumed.extend(transition.wake)
            # The resumed waiter holds the monitor; it must exit before the
            # next signaller can enter.
            core.exit(transition.wake[0])
        assert resumed == [1, 2, 3]


class TestHoareDiscipline:
    def test_signal_and_wait_parks_signaller_on_urgent(self):
        core, clock = make_core(discipline=Discipline.SIGNAL_AND_WAIT)
        core.enter(1, "Op")
        core.wait(1, "ready")
        core.enter(2, "Op")
        transition = core.signal(2, "ready")
        assert transition.caller_blocks
        assert transition.wake == (1,)
        assert core.running_pids == (1,)
        snapshot = core.snapshot()
        assert tuple(entry.pid for entry in snapshot.urgent) == (2,)

    def test_urgent_has_priority_over_entry_queue(self):
        core, __ = make_core(discipline=Discipline.SIGNAL_AND_WAIT)
        core.enter(1, "Op")
        core.wait(1, "ready")
        core.enter(2, "Op")
        core.enter(3, "Op")  # queues behind 2
        core.signal(2, "ready")  # 1 runs, 2 urgent, 3 still queued
        transition = core.exit(1)
        assert transition.wake == (2,)  # urgent beats entry queue
        assert core.running_pids == (2,)
        assert core.entry_pids == (3,)

    def test_signal_without_waiter_continues(self):
        core, __ = make_core(discipline=Discipline.SIGNAL_AND_WAIT)
        core.enter(1, "Op")
        transition = core.signal(1, "ready")
        assert not transition.caller_blocks
        assert core.running_pids == (1,)


class TestMesaDiscipline:
    def test_signal_moves_waiter_to_entry_queue(self):
        core, __ = make_core(discipline=Discipline.SIGNAL_AND_CONTINUE)
        core.enter(1, "Op")
        core.wait(1, "ready")
        core.enter(2, "Op")
        transition = core.signal(2, "ready")
        assert not transition.caller_blocks
        assert transition.wake == ()
        assert core.running_pids == (2,)
        assert core.entry_pids == (1,)

    def test_broadcast_moves_everyone(self):
        core, __ = make_core(discipline=Discipline.SIGNAL_AND_CONTINUE)
        for pid in (1, 2, 3):
            core.enter(pid, "Op")
            core.wait(pid, "ready")
        core.enter(9, "Op")
        core.broadcast(9, "ready")
        assert core.cond_pids("ready") == ()
        assert core.entry_pids == (1, 2, 3)

    def test_broadcast_rejected_outside_mesa(self):
        core, __ = make_core(discipline=Discipline.SIGNAL_EXIT)
        core.enter(1, "Op")
        with pytest.raises(MonitorUsageError):
            core.broadcast(1, "ready")


class TestSnapshotAndIntrospection:
    def test_snapshot_captures_queues(self):
        core, clock = make_core()
        core.enter(1, "Op")
        clock.tick()
        core.enter(2, "Other")
        snapshot = core.snapshot()
        assert snapshot.running_pids == (1,)
        assert snapshot.entry_pids == (2,)
        assert snapshot.find(1) == "running"
        assert snapshot.find(2) == "entry"
        assert snapshot.find(99) is None

    def test_snapshot_resource_probe(self):
        core, __ = make_core(probe=lambda: 7)
        assert core.snapshot().resource_count == 7

    def test_snapshot_without_probe(self):
        core, __ = make_core()
        assert core.snapshot().resource_count is None

    def test_idle(self):
        core, __ = make_core()
        assert core.idle
        core.enter(1, "Op")
        assert not core.idle
        core.exit(1)
        assert core.idle

    def test_queue_length(self):
        core, __ = make_core()
        core.enter(1, "Op")
        core.wait(1, "ready")
        assert core.queue_length("ready") == 1
        with pytest.raises(UnknownConditionError):
            core.queue_length("nope")

    def test_expel_vacates_and_admits(self):
        core, __ = make_core()
        core.enter(1, "Op")
        core.enter(2, "Op")
        wake = core.expel(1)
        assert wake == [2]
        assert core.running_pids == (2,)

    def test_expel_requires_inside(self):
        core, __ = make_core()
        with pytest.raises(NotInsideMonitorError):
            core.expel(1)


class TestRecording:
    def test_events_recorded_in_order(self):
        history = HistoryDatabase(retain_full_trace=True)
        core, __ = make_core(history=None)
        core.attach_history(history)
        core.enter(1, "Op")
        core.wait(1, "ready")
        core.enter(2, "Op")
        core.signal_exit(2, "ready")
        kinds = [event.kind.value for event in history.full_trace]
        assert kinds == ["Enter", "Wait", "Enter", "Signal-Exit"]
        seqs = [event.seq for event in history.full_trace]
        assert seqs == sorted(seqs)

    def test_flags_reflect_admission(self):
        history = HistoryDatabase(retain_full_trace=True)
        core, __ = make_core(history=None)
        core.attach_history(history)
        core.enter(1, "Op")
        core.enter(2, "Op")
        first, second = history.full_trace
        assert first.flag == 1
        assert second.flag == 0

    def test_no_history_means_no_recording(self):
        core, __ = make_core(history=None)
        core.enter(1, "Op")
        transition = core.exit(1)
        assert transition.event is None
