"""Durability layer: report journal, snapshot store, DurableEngine recovery."""

import json

import pytest

from repro.apps import SingleResourceAllocator
from repro.detection import (
    Confidence,
    DetectionEngine,
    DetectorConfig,
    DurableEngine,
    FaultReport,
    ReportJournal,
    SnapshotStore,
    STRule,
    report_from_dict,
    report_key,
    report_to_dict,
)
from repro.errors import RecoveryError
from repro.kernel import Delay, RandomPolicy, SimKernel


def sample_report(detected_at=1.5, rule=STRule.RELEASE_REQUIRES_REQUEST):
    return FaultReport(
        rule=rule,
        message="Release without a matching Request",
        monitor="allocator",
        detected_at=detected_at,
        pids=(3,),
        event_seq=12,
        window_start=1.0,
        confidence=Confidence.CONFIRMED,
    )


class TestReportCodec:
    def test_round_trip(self):
        report = sample_report()
        assert report_from_dict(report_to_dict(report)) == report

    def test_key_is_stable_and_discriminating(self):
        report = sample_report()
        assert report_key(report) == report_key(sample_report())
        assert report_key(report) != report_key(sample_report(detected_at=2.0))
        assert report_key(report) != report_key(
            sample_report(rule=STRule.NO_DUPLICATE_REQUEST)
        )


class TestReportJournal:
    def test_admit_then_dedup(self, tmp_path):
        journal = ReportJournal(tmp_path / "durable.reports")
        report = sample_report()
        assert journal.admit(report) is True
        assert journal.admit(report) is False
        assert journal.journaled == 1
        assert journal.deduplicated == 1

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "durable.reports"
        journal = ReportJournal(path)
        journal.admit(sample_report())
        journal.close()
        reopened = ReportJournal(path)
        assert len(reopened.reports) == 1
        # The restarted process re-deriving the same report is rejected.
        assert reopened.admit(sample_report()) is False

    def test_torn_final_line_truncated(self, tmp_path):
        path = tmp_path / "durable.reports"
        journal = ReportJournal(path)
        journal.admit(sample_report())
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"rule": "ST-8b", "monit')
        reopened = ReportJournal(path)
        assert reopened.torn_tails_truncated == 1
        assert len(reopened.reports) == 1
        # The interrupted append never surfaced; admitting it again works.
        assert reopened.admit(sample_report(detected_at=9.0)) is True


class TestSnapshotStore:
    def test_write_and_load_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write({"round": 1})
        store.write({"round": 2})
        payload, path = store.load_latest()
        assert payload == {"round": 2}
        assert path.name == "snapshot-000002.json"

    def test_corrupt_latest_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write({"round": 1})
        newest = store.write({"round": 2})
        newest.write_text('{"kind": "engine-snapshot", "chec', encoding="utf-8")
        payload, path = store.load_latest()
        assert payload == {"round": 1}
        assert store.corrupt_skipped == 1

    def test_checksum_mismatch_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        newest = store.write({"round": 1})
        body = json.loads(newest.read_text(encoding="utf-8"))
        body["payload"]["round"] = 99  # tamper without re-checksumming
        newest.write_text(json.dumps(body), encoding="utf-8")
        assert store.load_latest() is None
        assert store.corrupt_skipped == 1

    def test_prunes_beyond_keep(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for round_index in range(5):
            store.write({"round": round_index})
        assert len(store.paths()) == 2
        payload, __ = store.load_latest()
        assert payload == {"round": 4}

    def test_crash_before_rename_keeps_previous(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write({"round": 1})

        def boom():
            store.before_rename = None
            raise RuntimeError("crash")

        store.before_rename = boom
        with pytest.raises(RuntimeError):
            store.write({"round": 2})
        payload, __ = store.load_latest()
        assert payload == {"round": 1}


# ------------------------------------------------------------ durable engine


def build_durable(root, *, seed=3, fsync="interval"):
    kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    allocator = SingleResourceAllocator(kernel, name="allocator")
    engine = DetectionEngine(
        kernel, DetectorConfig(interval=0.25, tmax=60.0, tio=60.0, tlimit=60.0)
    )
    durable = DurableEngine(engine, root, fsync=fsync)
    durable.register(allocator, label="allocator")
    return kernel, allocator, durable


def run_with_misuse(root, *, rounds=4):
    """A run whose rogue release produces real-time reports, checkpointed."""
    kernel, allocator, durable = build_durable(root)
    durable.baseline()

    def misuser():
        yield Delay(0.1)
        yield from allocator.release()  # ST-8b + ST-PX
        yield Delay(0.2)
        yield from allocator.request()
        yield Delay(0.05)
        yield from allocator.release()

    def driver():
        for __ in range(rounds):
            yield Delay(0.25)
            durable.checkpoint()

    kernel.spawn(misuser(), "misuser")
    kernel.spawn(driver(), "driver")
    kernel.run(until=rounds * 0.25 + 5)
    kernel.raise_failures()
    return durable


class TestDurableEngine:
    def test_checkpoint_surfaces_each_report_once(self, tmp_path):
        durable = run_with_misuse(tmp_path)
        assert len(durable.reports) >= 2  # ST-8b and ST-PX at least
        keys = [report_key(report) for report in durable.reports]
        assert len(keys) == len(set(keys))
        assert durable.journal.deduplicated == 0
        durable.close()

    def test_recover_restores_the_report_stream(self, tmp_path):
        crashed = run_with_misuse(tmp_path)
        expected = [report_key(report) for report in crashed.reports]
        crashed.close()  # the "crash": state lives only in tmp_path now
        __, __, rebuilt = build_durable(tmp_path)
        summary = rebuilt.recover()
        assert summary.reports_restored == len(expected)
        assert [report_key(r) for r in rebuilt.reports] == expected
        assert rebuilt.durability_counters["recoveries"] == 1
        rebuilt.close()

    def test_recover_on_fresh_root_is_empty(self, tmp_path):
        __, __, durable = build_durable(tmp_path)
        summary = durable.recover()
        assert summary.snapshot_path is None
        assert summary.reports_restored == 0
        assert durable.reports == []
        durable.close()

    def test_recover_rejects_mismatched_fleet(self, tmp_path):
        crashed = run_with_misuse(tmp_path)
        crashed.close()
        kernel = SimKernel(RandomPolicy(seed=3), on_deadlock="stop")
        allocator = SingleResourceAllocator(kernel, name="allocator")
        engine = DetectionEngine(kernel, DetectorConfig(interval=0.25))
        rebuilt = DurableEngine(engine, tmp_path)
        rebuilt.register(allocator, label="somebody-else")
        with pytest.raises(RecoveryError):
            rebuilt.recover()
        rebuilt.close()

    def test_recover_falls_back_past_corrupt_snapshot(self, tmp_path):
        crashed = run_with_misuse(tmp_path)
        expected = [report_key(report) for report in crashed.reports]
        crashed.close()
        newest = crashed.snapshots.paths()[-1]
        newest.write_text("garbage", encoding="utf-8")
        __, __, rebuilt = build_durable(tmp_path)
        summary = rebuilt.recover()
        assert summary.snapshot_fallbacks >= 1
        # The journal, not the snapshot, owns delivery: still exactly once.
        assert [report_key(r) for r in rebuilt.reports] == expected
        rebuilt.close()

    def test_counters_and_repr(self, tmp_path):
        durable = run_with_misuse(tmp_path)
        counters = durable.durability_counters
        for name in (
            "wal_bytes_written",
            "wal_fsyncs",
            "snapshots_written",
            "recoveries",
            "reports_deduplicated",
        ):
            assert name in counters
        assert counters["wal_bytes_written"] > 0
        assert counters["snapshots_written"] > 0
        text = repr(durable)
        assert "wal_bytes" in text and "recoveries" in text
        durable.close()

    def test_statistics_pick_up_durability_counters(self, tmp_path):
        from repro.detection import FaultStatistics

        durable = run_with_misuse(tmp_path)
        stats = FaultStatistics.from_engine(durable)
        assert stats.counters["wal_bytes_written"] > 0
        assert "durability:" in stats.render()
        durable.close()

    def test_recover_restores_incremental_rule_state(self, tmp_path):
        crashed = run_with_misuse(tmp_path)
        entry = crashed.engine.entries[0]
        before = entry.algorithm1.state_dict()
        assert before["carried"], "run should end on verified carried lists"
        reports_before = [report_key(r) for r in crashed.reports]
        crashed.close()

        kernel, __, rebuilt = build_durable(tmp_path)
        rebuilt.recover()
        restored = rebuilt.engine.entries[0].algorithm1
        assert restored.hits == before["hits"]
        assert restored.rebases == before["rebases"]
        assert restored.carried
        # The first post-recovery checkpoint resumes mid-stream: the
        # carried lists are reused (a hit, not a rebase) and no spurious
        # report appears on the healthy, idle monitor.  (Advance the fresh
        # kernel's clock past the restored checkpoint time first.)
        def idle():
            yield Delay(5.0)

        kernel.spawn(idle(), "idle")
        kernel.run(until=5.0)
        rebuilt.checkpoint()
        assert restored.hits == before["hits"] + 1
        assert restored.rebases == before["rebases"]
        assert [report_key(r) for r in rebuilt.reports] == reports_before
        rebuilt.close()
