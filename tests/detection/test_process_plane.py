"""Process-parallel phase-2 evaluation: byte-identical report streams
across evaluation planes, deterministic in-thread fallback after a
``kill -9``'d evaluator worker, and the pool-close leak accounting.

The plane must be invisible in the output: same seeded sim workload,
``evaluation="threads"`` vs ``"processes"`` (and a 1-shard inline
baseline) must merge to byte-identical report streams, because the
worker evaluates the same frozen windows with the same shadow checkers
and the merge key is plane-independent.
"""

import threading
import time

import pytest

from repro.apps import SingleResourceAllocator
from repro.detection import DetectionCluster, DetectorConfig
from repro.detection.procpool import EvaluationPool, ThreadEvaluationPool
from repro.history import HistoryDatabase
from repro.kernel import Delay, FifoPolicy, SimKernel

#: Generous timeouts: reports anchor to event times, so the merged
#: stream is capture-schedule (and so shard-count) independent.
CONFIG = DetectorConfig(
    interval=0.5,
    tmax=120.0,
    tio=120.0,
    tlimit=120.0,
    realtime_orders=False,
    stagger=False,
)


def build_workload(kernel, count=6):
    """``count`` allocators with deterministic request/release cycles and
    two rogue bare releases — order violations the phase-2 replay checker
    flags *worker-side* (``realtime_orders=False``)."""
    allocators = [
        SingleResourceAllocator(kernel, history=HistoryDatabase())
        for __ in range(count)
    ]
    for index, allocator in enumerate(allocators):

        def user(allocator=allocator, index=index):
            for __ in range(4):
                yield Delay(0.1 + 0.01 * index)
                yield from allocator.request()
                yield Delay(0.05)
                yield from allocator.release()

        kernel.spawn(user(), f"user-{index}")

    def rogue(allocator, delay):
        def proc():
            yield Delay(delay)
            yield from allocator.release()

        return proc()

    kernel.spawn(rogue(allocators[0], 3.0), "rogue-0")
    kernel.spawn(rogue(allocators[3], 3.5), "rogue-3")
    return allocators


def run_plane(evaluation, shards, *, sabotage=None):
    kernel = SimKernel(FifoPolicy(), on_deadlock="stop")
    allocators = build_workload(kernel)
    cluster = DetectionCluster(
        kernel, CONFIG, shards=shards, evaluation=evaluation
    )
    for index, allocator in enumerate(allocators):
        cluster.register(allocator, label=f"alloc-{index}")
    pool = cluster._pool

    def pacer():
        rounds = 0
        while True:
            yield Delay(CONFIG.interval)
            cluster.checkpoint()
            rounds += 1
            if sabotage is not None and rounds == 3:
                sabotage(cluster, pool)

    kernel.spawn(pacer(), "pacer")
    kernel.run(until=8.0)
    cluster.stop()
    return cluster, pool


class TestPlaneDeterminism:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_threads_vs_processes_byte_identical(self, shards):
        baseline, __ = run_plane("inline", 1)
        expected = [report.render() for report in baseline.reports]
        assert expected, "workload produced no fault reports"
        for plane in ("threads", "processes"):
            cluster, __ = run_plane(plane, shards)
            assert [
                report.render() for report in cluster.reports
            ] == expected, plane
            # Structural identity too, not just the rendered text.
            assert cluster.reports == baseline.reports, plane
            assert not cluster.pool_leaks

    def test_worker_evaluations_actually_ran_out_of_process(self):
        cluster, pool = run_plane("processes", 2)
        # No deaths, no fallbacks: every window was evaluated by a worker.
        assert pool.worker_deaths == []
        assert pool.windows_recovered == 0
        assert sum(pool.per_worker_cpu) > 0.0
        assert sum(
            shard.engine.evaluations_run for shard in cluster.shards
        ) > 0


class TestWorkerDeathFallback:
    def test_killed_worker_degrades_without_losing_reports(self):
        baseline, __ = run_plane("inline", 1)
        expected = [report.render() for report in baseline.reports]
        assert expected

        def kill_worker(cluster, pool):
            handle = pool._handles[0]
            handle.process.kill()  # SIGKILL: no goodbye, no flush
            handle.process.join(timeout=10.0)

        cluster, pool = run_plane("processes", 2, sabotage=kill_worker)
        # Not one report lost, duplicated or reordered.
        assert [report.render() for report in cluster.reports] == expected
        assert pool.worker_deaths and pool.worker_deaths[0][0] == 0
        assert pool.windows_recovered > 0
        kinds = [
            event.kind
            for shard in cluster.shards
            for event in shard.supervisor.events
        ]
        assert "worker-death" in kinds
        # The healthy shard kept its worker.
        assert not pool._handles[1].dead


class TestPoolCloseLeak:
    def test_close_surfaces_stuck_worker_threads(self):
        pool = ThreadEvaluationPool(1)
        release = threading.Event()
        pool.submit(0, release.wait)
        time.sleep(0.05)  # let the dispatch thread pick the job up
        leaked = pool.close(timeout=0.1)
        try:
            assert leaked == [(0, "shard-evaluate-0")]
            assert pool.leaked == leaked
        finally:
            release.set()

    def test_clean_close_leaks_nothing(self):
        pool = ThreadEvaluationPool(2)
        pool.submit(0, lambda: None)
        pool.submit(1, lambda: None)
        pool.drain()
        assert pool.close(timeout=5.0) == []
        assert pool.leaked == []

    def test_cluster_records_leak_event(self):
        kernel = SimKernel(FifoPolicy(), on_deadlock="stop")
        cluster = DetectionCluster(
            kernel, CONFIG, shards=1, evaluation="threads"
        )
        pool = cluster._pool
        release = threading.Event()
        pool.submit(0, release.wait)
        time.sleep(0.05)
        # The cluster closes pools with the default (long) join timeout;
        # shrink it so the stuck worker is surfaced promptly.
        pool.close = lambda timeout=5.0: EvaluationPool.close(
            pool, timeout=0.1
        )
        try:
            cluster.close()
            assert cluster.pool_leaks == [(0, "shard-evaluate-0")]
            kinds = [
                event.kind
                for event in cluster.shards[0].supervisor.events
            ]
            assert "leak" in kinds
        finally:
            release.set()
