"""DetectionEngine: batching, equivalence with per-monitor detectors,
façade backward compatibility, config validation, tap lifecycle."""

import pytest

from repro.apps import BoundedBuffer, SharedAccount, SingleResourceAllocator
from repro.detection import (
    DetectionEngine,
    DetectorConfig,
    FaultClass,
    FaultDetector,
    STRule,
    detector_process,
    engine_process,
)
from repro.history import BoundedHistory, HistoryDatabase
from repro.injection import TriggeredHooks
from repro.kernel import Delay, RandomPolicy, SimKernel


def make_kernel(seed=0):
    return SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")


def spawn_mixed_workload(kernel, monitors, *, buggy_release=False):
    """Drive one buffer + one allocator + one account deterministically."""
    buffer, allocator, account = monitors

    def producer():
        for item in range(8):
            yield Delay(0.05)
            yield from buffer.send(item)

    def consumer():
        for __ in range(8):
            yield Delay(0.06)
            yield from buffer.receive()

    def alloc_user(i):
        for __ in range(4):
            yield Delay(0.07 * (i + 1))
            yield from allocator.request()
            yield Delay(0.05)
            yield from allocator.release()

    def banker():
        for __ in range(6):
            yield Delay(0.08)
            yield from account.deposit(5)

    kernel.spawn(producer())
    kernel.spawn(consumer())
    for i in range(2):
        kernel.spawn(alloc_user(i))
    kernel.spawn(banker())
    if buggy_release:
        def rude():
            yield Delay(0.5)
            yield from allocator.release()

        kernel.spawn(rude())


def build_monitors(kernel):
    return (
        BoundedBuffer(kernel, capacity=2, history=HistoryDatabase()),
        SingleResourceAllocator(kernel, history=HistoryDatabase()),
        SharedAccount(kernel, 100, history=HistoryDatabase()),
    )


def report_keys(reports):
    return sorted((r.rule_id, r.detected_at, tuple(r.pids)) for r in reports)


class TestBatching:
    def test_one_atomic_section_per_interval_with_16_monitors(self):
        kernel = make_kernel()
        engine = DetectionEngine(kernel, DetectorConfig(interval=1.0))
        for i in range(16):
            engine.register(
                SingleResourceAllocator(
                    kernel, history=HistoryDatabase(), name=f"alloc{i}"
                )
            )
        kernel.spawn(engine_process(engine, rounds=5))
        kernel.run()
        kernel.raise_failures()
        assert engine.checkpoints_run == 5
        # The acceptance property: one world-stop per interval, not 16.
        assert engine.atomic_sections == 5
        # ...while every monitor was still checked at every interval.
        assert all(e.checkpoints_run == 5 for e in engine.entries)

    def test_register_requires_same_kernel(self):
        engine = DetectionEngine(make_kernel())
        other = SingleResourceAllocator(make_kernel(), history=HistoryDatabase())
        with pytest.raises(ValueError):
            engine.register(other)

    def test_duplicate_names_get_unique_labels(self):
        kernel = make_kernel()
        engine = DetectionEngine(kernel)
        for __ in range(3):
            engine.register(
                SingleResourceAllocator(kernel, history=HistoryDatabase())
            )
        assert engine.labels == ("allocator", "allocator#2", "allocator#3")
        assert set(engine.reports_by_monitor()) == set(engine.labels)

    def test_unregister_removes_from_checkpoints_and_detaches(self):
        kernel = make_kernel()
        engine = DetectionEngine(kernel)
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        entry = engine.register(allocator)
        assert allocator.history.listener_count == 1
        engine.unregister(allocator)
        assert allocator.history.listener_count == 0
        assert engine.entries == ()
        with pytest.raises(KeyError):
            engine.entry_for(entry.label)


class TestEquivalence:
    def test_engine_reports_match_independent_detectors(self):
        """The batched checkpoint must find exactly what N detectors find."""
        config = DetectorConfig(interval=0.5, tmax=30.0, tio=30.0, tlimit=30.0)

        # Run A: one engine over three monitors.
        kernel_a = make_kernel(seed=5)
        monitors_a = build_monitors(kernel_a)
        engine = DetectionEngine(kernel_a, config)
        for target in monitors_a:
            engine.register(target)
        spawn_mixed_workload(kernel_a, monitors_a, buggy_release=True)
        kernel_a.spawn(engine_process(engine), "engine")
        kernel_a.run(until=10)
        kernel_a.raise_failures()

        # Run B: three independent detectors on an identically seeded kernel.
        kernel_b = make_kernel(seed=5)
        monitors_b = build_monitors(kernel_b)
        detectors = [FaultDetector(m, config) for m in monitors_b]
        spawn_mixed_workload(kernel_b, monitors_b, buggy_release=True)
        for detector in detectors:
            kernel_b.spawn(detector_process(detector), "detector")
        kernel_b.run(until=10)
        kernel_b.raise_failures()

        by_monitor = engine.reports_by_monitor()
        # The injected release-before-request is found by both topologies
        # and attributed to the allocator.
        assert any(
            r.rule is STRule.RELEASE_REQUIRES_REQUEST
            for r in by_monitor["allocator"]
        )
        assert report_keys(by_monitor["buffer"]) == report_keys(
            detectors[0].reports
        )
        assert report_keys(by_monitor["allocator"]) == report_keys(
            detectors[1].reports
        )
        assert report_keys(by_monitor["account"]) == report_keys(
            detectors[2].reports
        )
        assert FaultClass.RELEASE_BEFORE_REQUEST in engine.implicated_faults()
        assert not engine.clean

    def test_clean_multi_monitor_run(self):
        kernel = make_kernel(seed=2)
        monitors = build_monitors(kernel)
        engine = DetectionEngine(
            kernel, DetectorConfig(interval=0.5, tmax=30.0, tio=30.0, tlimit=30.0)
        )
        for target in monitors:
            engine.register(target)
        spawn_mixed_workload(kernel, monitors)
        kernel.spawn(engine_process(engine), "engine")
        kernel.run(until=10)
        kernel.raise_failures()
        assert engine.clean
        assert engine.implicated_faults() == frozenset()
        assert all(not reports for reports in engine.reports_by_monitor().values())

    def test_engine_works_with_bounded_history(self):
        kernel = make_kernel()
        allocator = SingleResourceAllocator(kernel, history=BoundedHistory(64))
        engine = DetectionEngine(kernel, DetectorConfig(interval=0.5))
        engine.register(allocator)

        def user():
            for __ in range(5):
                yield Delay(0.1)
                yield from allocator.request()
                yield Delay(0.05)
                yield from allocator.release()

        kernel.spawn(user())
        kernel.spawn(engine_process(engine, rounds=6))
        kernel.run(until=10)
        kernel.raise_failures()
        assert engine.clean
        assert engine.checkpoints_run == 6


class TestFacadeCompatibility:
    def test_detector_is_a_one_monitor_engine(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        detector = FaultDetector(buffer)
        assert isinstance(detector.engine, DetectionEngine)
        assert detector.engine.monitors == (buffer.monitor,)

    def test_facade_reports_are_live(self, kernel):
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        detector = FaultDetector(allocator)
        reports = detector.reports  # grabbed before the fault fires

        def buggy():
            yield from allocator.release()

        kernel.spawn(buggy())
        kernel.run(until=1.0)
        kernel.raise_failures()
        assert reports  # the same list object observed the new reports
        assert reports is detector.reports

    def test_stop_detaches_realtime_tap(self, kernel):
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        detector = FaultDetector(allocator)
        assert allocator.history.listener_count == 1
        detector.stop()
        assert allocator.history.listener_count == 0
        assert detector.stopped

    def test_stopped_detector_no_longer_observes_events(self, kernel):
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        detector = FaultDetector(allocator)
        detector.stop()

        def buggy():
            yield from allocator.release()

        kernel.spawn(buggy())
        kernel.run(until=1.0)
        kernel.raise_failures()
        # Tap detached: the level-III fault is no longer reported live.
        assert detector.reports == []


class TestConfigValidation:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            DetectorConfig(interval=0.0)
        with pytest.raises(ValueError):
            DetectorConfig(interval=-1.0)

    @pytest.mark.parametrize("field", ["tmax", "tio", "tlimit"])
    def test_rejects_negative_timeouts(self, field):
        with pytest.raises(ValueError):
            DetectorConfig(**{field: -0.5})

    @pytest.mark.parametrize("field", ["tmax", "tio", "tlimit"])
    def test_none_disables_a_sweep(self, field):
        config = DetectorConfig(**{field: None})
        assert getattr(config, field) is None

    def test_defaults_are_valid(self):
        DetectorConfig()


class TestEdgeCases:
    """Degenerate lifecycles must not raise and must keep counters stable."""

    @pytest.fixture
    def kernel(self):
        return make_kernel()

    def test_checkpoint_with_zero_monitors(self, kernel):
        engine = DetectionEngine(kernel, DetectorConfig(interval=1.0))
        for __ in range(3):
            assert engine.checkpoint() == []
        assert engine.checkpoints_run == 3
        assert engine.atomic_sections == 3
        assert engine.reports == []
        assert engine.clean

    def test_unregister_between_checkpoints(self, kernel):
        monitors = build_monitors(kernel)
        buffer, allocator, __ = monitors
        engine = DetectionEngine(kernel, DetectorConfig(interval=1.0))
        for monitor in monitors:
            engine.register(monitor)
        spawn_mixed_workload(kernel, monitors)

        kernel.run(until=0.5)
        engine.checkpoint()
        engine.unregister(allocator)
        assert allocator.history.listener_count == 0
        assert len(engine.entries) == 2

        kernel.run(until=1.0)
        engine.checkpoint()
        kernel.run(until=2.5)
        engine.checkpoint()
        kernel.raise_failures()

        assert engine.checkpoints_run == 3
        assert engine.atomic_sections == 3
        # Survivors kept checking after the fleet shrank.
        assert engine.entry_for(buffer).checkpoints_run == 3

    def test_unregister_unknown_monitor_raises(self, kernel):
        monitors = build_monitors(kernel)
        engine = DetectionEngine(kernel, DetectorConfig(interval=1.0))
        engine.register(monitors[0])
        with pytest.raises(ValueError):
            engine.unregister(monitors[1])

    def test_double_stop_is_idempotent(self, kernel):
        monitors = build_monitors(kernel)
        engine = DetectionEngine(kernel, DetectorConfig(interval=1.0))
        for monitor in monitors:
            engine.register(monitor)
        engine.checkpoint()
        engine.stop()
        engine.stop()  # second stop: no exception, no double-detach blowup
        assert engine.stopped
        for monitor in monitors:
            assert monitor.history.listener_count == 0
        assert engine.checkpoints_run == 1
        assert engine.atomic_sections == 1

    def test_checkpoint_after_stop_still_counts(self, kernel):
        """A manual checkpoint on a stopped engine stays well-defined."""
        engine = DetectionEngine(kernel, DetectorConfig(interval=1.0))
        engine.register(build_monitors(kernel)[0])
        engine.stop()
        assert engine.checkpoint() == []
        assert engine.checkpoints_run == 1
