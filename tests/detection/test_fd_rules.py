"""Tests for the offline FD-rule checker over complete traces."""

import pytest

from repro.apps import BoundedBuffer, SingleResourceAllocator
from repro.detection import FDRule, check_full_trace
from repro.detection.fd_rules import ST_TO_FD, empty_initial_state
from repro.detection.rules import STRule
from repro.history import HistoryDatabase
from repro.history.events import enter_event, signal_exit_event, wait_event
from repro.kernel import Delay, RandomPolicy, SimKernel
from repro.monitor import MonitorDeclaration, MonitorType
from tests.conftest import consumer, producer


def coordinator_declaration(rmax=3):
    return MonitorDeclaration(
        name="buffer",
        mtype=MonitorType.COMMUNICATION_COORDINATOR,
        procedures=("Send", "Receive"),
        conditions=("full", "empty"),
        rmax=rmax,
    )


class TestTranslation:
    def test_every_st_rule_translates(self):
        for rule in STRule:
            if rule is STRule.EVENT_WHILE_BLOCKED:
                continue  # split contextually inside _translate
            assert rule in ST_TO_FD

    def test_empty_initial_state_carries_rmax(self):
        state = empty_initial_state(coordinator_declaration(rmax=5))
        assert state.resource_count == 5
        assert state.running == ()


class TestHandBuiltTraces:
    def test_clean_trace(self):
        trace = (
            enter_event(0, 1, "Send", 0.1, 1),
            signal_exit_event(1, 1, "Send", 0.2, 0, cond="empty"),
        )
        assert check_full_trace(coordinator_declaration(), trace) == []

    def test_empty_trace(self):
        assert check_full_trace(coordinator_declaration(), ()) == []

    def test_mutex_violation_maps_to_fd1a(self):
        trace = (
            enter_event(0, 1, "Send", 0.1, 1),
            enter_event(1, 2, "Send", 0.2, 1),
        )
        reports = check_full_trace(coordinator_declaration(), trace)
        assert any(r.rule is FDRule.MUTUAL_EXCLUSION_ENTER for r in reports)

    def test_unfair_delay_maps_to_fd3(self):
        trace = (enter_event(0, 1, "Send", 0.1, 0),)
        reports = check_full_trace(coordinator_declaration(), trace)
        assert any(r.rule is FDRule.FAIR_RESPONSE for r in reports)

    def test_resource_violation_maps_to_fd6(self):
        trace = (
            enter_event(0, 1, "Receive", 0.1, 1),
            signal_exit_event(1, 1, "Receive", 0.2, 0, cond="full"),
        )
        reports = check_full_trace(coordinator_declaration(), trace)
        assert any(r.rule is FDRule.RESOURCE_INVARIANT for r in reports)

    def test_nontermination_via_tmax(self):
        from repro.history.states import QueueEntry, SchedulingState

        trace = (enter_event(0, 1, "Send", 0.0, 1),)
        # P1 never exits; the final snapshot at t=50 still shows it inside.
        final = SchedulingState(
            time=50.0,
            entry_queue=(),
            cond_queues={"full": (), "empty": ()},
            running=(QueueEntry(1, "Send", 0.0),),
            resource_count=3,
        )
        reports = check_full_trace(
            coordinator_declaration(), trace, final_state=final, tmax=10.0
        )
        assert any(r.rule is FDRule.NONTERMINATION for r in reports)

    def test_ordering_violation_maps_to_fd7(self):
        decl = MonitorDeclaration(
            name="allocator",
            mtype=MonitorType.RESOURCE_ALLOCATOR,
            procedures=("Request", "Release"),
            conditions=("free",),
            call_order="(Request ; Release)*",
        )
        trace = (
            enter_event(0, 1, "Request", 0.1, 1),
            signal_exit_event(1, 1, "Request", 0.15, 0),
            enter_event(2, 1, "Request", 0.2, 1),
        )
        reports = check_full_trace(decl, trace)
        assert any(r.rule is FDRule.ACQUIRE_THEN_RELEASE for r in reports)


class TestLiveTraces:
    def test_clean_buffer_run_passes_fd_rules(self):
        kernel = SimKernel(RandomPolicy(seed=3), on_deadlock="stop")
        history = HistoryDatabase(retain_full_trace=True)
        buffer = BoundedBuffer(
            kernel, capacity=3, history=history, service_time=0.02
        )
        for __ in range(2):
            kernel.spawn(producer(buffer, 20))
            kernel.spawn(consumer(buffer, 20))
        kernel.run(until=30)
        kernel.raise_failures()
        reports = check_full_trace(
            buffer.declaration,
            history.full_trace,
            final_state=buffer.snapshot(),
            tmax=20.0,
            tio=20.0,
        )
        assert reports == []

    def test_clean_allocator_run_passes_fd_rules(self):
        kernel = SimKernel(RandomPolicy(seed=3), on_deadlock="stop")
        history = HistoryDatabase(retain_full_trace=True)
        allocator = SingleResourceAllocator(kernel, history=history)

        def user(i):
            for __ in range(5):
                yield Delay(0.05 * (i + 1))
                yield from allocator.request()
                yield Delay(0.1)
                yield from allocator.release()

        for i in range(4):
            kernel.spawn(user(i))
        kernel.run(until=30)
        kernel.raise_failures()
        reports = check_full_trace(
            allocator.declaration,
            history.full_trace,
            final_state=allocator.snapshot(),
            tmax=20.0,
            tio=20.0,
            tlimit=20.0,
        )
        assert reports == []
