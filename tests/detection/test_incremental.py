"""IncrementalConcurrencyChecker: carry, rebase, fast path, durability.

The differential property suite (``tests/properties/test_prop_incremental``)
pins the stream-level contract — incremental == oracle on live workloads.
These tests pin the mechanism: when the carry is taken, when the lists are
re-seeded, when the zero-event fast path may be used, and that the carried
state round-trips through :meth:`state_dict` / :meth:`restore_state`.
"""

from repro.detection.algorithm1 import (
    IncrementalConcurrencyChecker,
    check_general_concurrency_control,
)
from repro.detection.rules import STRule
from repro.history.events import enter_event, signal_exit_event
from repro.history.sink import Segment
from repro.history.states import QueueEntry, SchedulingState
from repro.monitor import MonitorDeclaration, MonitorType


def declaration():
    return MonitorDeclaration(
        name="buffer",
        mtype=MonitorType.COMMUNICATION_COORDINATOR,
        procedures=("Send", "Receive"),
        conditions=("full", "empty"),
        rmax=3,
    )


def state(time=0.0, **overrides):
    base = dict(
        time=time,
        entry_queue=(),
        cond_queues={"full": (), "empty": ()},
        running=(),
        resource_count=3,
    )
    base.update(overrides)
    return SchedulingState(**base)


def clean_window(previous, start_seq, t0):
    """A complete Send visit: enter, signal-exit, exit — state unchanged."""
    events = (
        enter_event(start_seq, 1, "Send", t0 + 0.1, 1),
        signal_exit_event(start_seq + 1, 1, "Send", t0 + 0.2, 0, cond="empty"),
    )
    return Segment(previous, events, state(t0 + 1.0))


class TestCarrySemantics:
    def test_first_window_is_a_rebase(self):
        checker = IncrementalConcurrencyChecker(declaration())
        s0 = state(0.0)
        checker.check_window(clean_window(s0, 0, 0.0))
        assert checker.rebases == 1
        assert checker.hits == 0
        assert checker.carried

    def test_contiguous_windows_carry_by_identity(self):
        checker = IncrementalConcurrencyChecker(declaration())
        s0 = state(0.0)
        first = clean_window(s0, 0, 0.0)
        checker.check_window(first)
        # The next window starts on the *same object* the sink handed out
        # as the last window's current — that is the carry condition.
        second = clean_window(first.current, 2, 1.0)
        checker.check_window(second)
        assert checker.hits == 1
        assert checker.rebases == 1

    def test_equal_but_distinct_snapshot_rebases(self):
        checker = IncrementalConcurrencyChecker(declaration())
        s0 = state(0.0)
        first = clean_window(s0, 0, 0.0)
        checker.check_window(first)
        # Same value, different object: identity carry must refuse it
        # (out-of-sequence windows, e.g. right after crash recovery).
        second = clean_window(state(1.0), 2, 1.0)
        checker.check_window(second)
        assert checker.hits == 0
        assert checker.rebases == 2

    def test_mismatch_invalidates_the_carry(self):
        checker = IncrementalConcurrencyChecker(declaration())
        s0 = state(0.0)
        # Replay says the monitor empties, but the snapshot claims P9 is
        # running: the lists cannot be trusted for the next window.
        events = (
            enter_event(0, 1, "Send", 0.1, 1),
            signal_exit_event(1, 1, "Send", 0.2, 0, cond="empty"),
        )
        bad_current = state(1.0, running=(QueueEntry(9, "Send", 0.5),))
        reports = checker.check_window(Segment(s0, events, bad_current))
        assert reports  # the divergence itself is reported
        assert not checker.carried
        follow_up = clean_window(bad_current, 2, 1.0)
        checker.check_window(follow_up)
        assert checker.rebases == 2

    def test_matches_oracle_across_carried_windows(self):
        decl = declaration()
        checker = IncrementalConcurrencyChecker(decl)
        previous = state(0.0)
        for index in range(5):
            segment = clean_window(previous, index * 2, float(index))
            incremental = checker.check_window(segment, tmax=5.0, tio=5.0)
            oracle = check_general_concurrency_control(
                decl, segment, tmax=5.0, tio=5.0
            )
            assert incremental == oracle
            previous = segment.current
        assert checker.hits == 4


class TestFastPath:
    def test_zero_event_window_takes_fast_path(self):
        checker = IncrementalConcurrencyChecker(declaration())
        s0 = state(0.0)
        first = clean_window(s0, 0, 0.0)
        checker.check_window(first)
        idle = Segment(first.current, (), state(2.0))
        assert checker.check_window(idle) == []
        assert checker.fastpaths == 1

    def test_fast_path_still_sweeps_timers(self):
        decl = declaration()
        checker = IncrementalConcurrencyChecker(decl)
        stuck = QueueEntry(7, "Send", 0.0)
        s0 = state(0.0, running=(stuck,))
        first = Segment(s0, (), state(1.0, running=(stuck,)))
        checker.check_window(first, tmax=100.0)
        late = state(50.0, running=(stuck,))
        reports = checker.check_window(
            Segment(first.current, (), late), tmax=10.0
        )
        assert checker.fastpaths >= 1
        assert {r.rule for r in reports} == {STRule.TMAX_EXCEEDED}
        oracle = check_general_concurrency_control(
            decl, Segment(first.current, (), late), tmax=10.0
        )
        assert reports == oracle

    def test_zero_events_with_changed_state_is_not_fast_pathed(self):
        # Fault hooks can mutate state while suppressing the event record:
        # zero events does NOT imply unchanged lists, so the fast path
        # must verify with matches() — and fall through here.
        decl = declaration()
        checker = IncrementalConcurrencyChecker(decl)
        s0 = state(0.0)
        first = clean_window(s0, 0, 0.0)
        checker.check_window(first)
        ghost = state(2.0, running=(QueueEntry(3, "Send", 1.5),))
        segment = Segment(first.current, (), ghost)
        reports = checker.check_window(segment)
        assert checker.fastpaths == 0
        assert reports == check_general_concurrency_control(decl, segment)


class TestDurability:
    def test_state_round_trip_preserves_carry(self):
        decl = declaration()
        checker = IncrementalConcurrencyChecker(decl)
        s0 = state(0.0)
        first = clean_window(s0, 0, 0.0)
        checker.check_window(first)
        record = checker.state_dict()
        assert record["carried"] is True

        restored = IncrementalConcurrencyChecker(decl)
        restored.restore_state(record, basis=first.current)
        assert restored.carried
        assert restored.hits == checker.hits
        second = clean_window(first.current, 2, 1.0)
        restored.check_window(second)
        assert restored.hits == checker.hits + 1  # resumed mid-stream

    def test_restore_without_basis_falls_back_to_rebase(self):
        decl = declaration()
        checker = IncrementalConcurrencyChecker(decl)
        first = clean_window(state(0.0), 0, 0.0)
        checker.check_window(first)
        restored = IncrementalConcurrencyChecker(decl)
        restored.restore_state(checker.state_dict())
        assert not restored.carried
        restored.check_window(clean_window(state(1.0), 2, 1.0))
        assert restored.rebases == checker.rebases + 1

    def test_fresh_checker_state_dict_restores_empty(self):
        decl = declaration()
        record = IncrementalConcurrencyChecker(decl).state_dict()
        assert record["lists"] is None
        restored = IncrementalConcurrencyChecker(decl)
        restored.restore_state(record)
        assert not restored.carried
