"""Sharded detection cluster: shard policies, staggered schedules,
merged-report determinism across shard counts, pooled phase-2 evaluation
on the thread kernel, durable per-shard recovery, and the retired
quarantine-record fix."""

import pytest

from repro.apps import BoundedBuffer, SingleResourceAllocator
from repro.detection import (
    DetectionCluster,
    DetectionEngine,
    DetectorConfig,
    FaultStatistics,
    LabelSharding,
    RateBalancedSharding,
    RoundRobinSharding,
    make_shard_policy,
)
from repro.history import HistoryDatabase
from repro.history.sink import merge_event_streams
from repro.injection import sabotage_entry
from repro.kernel import Delay, FifoPolicy, SimKernel, ThreadKernel

FAST = 0.002

#: Generous timeouts: no timer sweep fires, so every report is anchored
#: to its event time (capture-schedule independent) — the property the
#: determinism tests rely on.
QUIET = dict(tmax=120.0, tio=120.0, tlimit=120.0)


def make_kernel():
    # FifoPolicy consumes no RNG, so scheduling is identical no matter
    # how many detection pacing processes share the ready queue.
    return SimKernel(FifoPolicy(), on_deadlock="stop")


def build_allocators(kernel, count=3):
    return [
        SingleResourceAllocator(kernel, history=HistoryDatabase())
        for __ in range(count)
    ]


def spawn_allocator_workload(kernel, allocators, *, rogue_on=0):
    """Deterministic request/release cycles + one rogue bare release.

    The rogue process calls ``release()`` without a prior ``request()`` at
    a quiet instant — the real-time Algorithm-3 tap flags the order
    violation at the event time, which does not move when the checkpoint
    schedule is staggered.
    """
    for index, allocator in enumerate(allocators):

        def user(allocator=allocator, index=index):
            for __ in range(4):
                yield Delay(0.1 + 0.01 * index)
                yield from allocator.request()
                yield Delay(0.05)
                yield from allocator.release()

        kernel.spawn(user(), f"user-{index}")

    def rogue():
        # Long after the users above are done (4 cycles end well before
        # t=2), so the resource is free and nothing else is perturbed.
        yield Delay(3.0)
        yield from allocators[rogue_on].release()

    kernel.spawn(rogue(), "rogue")


class TestShardPolicies:
    def test_round_robin_spreads_in_registration_order(self):
        kernel = make_kernel()
        cluster = DetectionCluster(kernel, shards=3)
        monitors = build_allocators(kernel, 6)
        for monitor in monitors:
            cluster.register(monitor)
        assert [cluster.shard_of(m) for m in monitors] == [0, 1, 2, 0, 1, 2]

    def test_rate_balanced_prefers_least_loaded_shard(self):
        kernel = make_kernel()
        cluster = DetectionCluster(
            kernel, shards=2, policy=RateBalancedSharding()
        )
        first, second, third = build_allocators(kernel, 3)
        entry = cluster.register(first)
        entry.event_rate = 100.0  # hot shard 0
        cluster.register(second)
        cluster.register(third)
        # Both later monitors avoid the hot shard until it is no longer
        # the least loaded by entry count.
        assert cluster.shard_of(second) == 1
        assert cluster.shard_of(third) == 1

    def test_label_policy_groups_by_shard_label(self):
        kernel = make_kernel()
        cluster = DetectionCluster(kernel, shards=2, policy=LabelSharding())
        monitors = build_allocators(kernel, 4)
        cluster.register(monitors[0], group="a")
        cluster.register(monitors[1], group="b")
        cluster.register(monitors[2], group="a")
        cluster.register(monitors[3], group="b")
        assert cluster.shard_of(monitors[0]) == cluster.shard_of(monitors[2])
        assert cluster.shard_of(monitors[1]) == cluster.shard_of(monitors[3])
        assert cluster.shard_of(monitors[0]) != cluster.shard_of(monitors[1])

    def test_explicit_shard_pins_placement(self):
        kernel = make_kernel()
        cluster = DetectionCluster(kernel, shards=3)
        monitor = build_allocators(kernel, 1)[0]
        cluster.register(monitor, shard=2)
        assert cluster.shard_of(monitor) == 2

    def test_invalid_shard_index_rejected(self):
        kernel = make_kernel()
        cluster = DetectionCluster(kernel, shards=2)
        monitor = build_allocators(kernel, 1)[0]
        with pytest.raises(ValueError, match="out of range"):
            cluster.register(monitor, shard=5)

    def test_unknown_policy_name_rejected(self):
        with pytest.raises(ValueError, match="unknown shard policy"):
            make_shard_policy("hash")

    def test_config_shard_fields_validated(self):
        with pytest.raises(ValueError, match="shards"):
            DetectorConfig(shards=0)
        with pytest.raises(ValueError, match="shard_policy"):
            DetectorConfig(shard_policy="modulo")

    def test_cluster_shape_from_config(self):
        kernel = make_kernel()
        config = DetectorConfig(shards=4, shard_policy="rate")
        cluster = DetectionCluster(kernel, config)
        assert cluster.shard_count == 4
        assert isinstance(cluster.policy, RateBalancedSharding)

    def test_duplicate_labels_unique_across_shards(self):
        kernel = make_kernel()
        cluster = DetectionCluster(kernel, shards=2)
        monitors = build_allocators(kernel, 3)
        for monitor in monitors:
            cluster.register(monitor)
        assert len(set(cluster.labels)) == 3


class TestStagger:
    def test_offsets_divide_interval_across_active_shards(self):
        kernel = make_kernel()
        cluster = DetectionCluster(
            kernel, DetectorConfig(interval=1.0), shards=4
        )
        monitors = build_allocators(kernel, 4)
        for monitor in monitors:
            cluster.register(monitor)
        assert cluster.offsets == (0.0, 0.25, 0.5, 0.75)

    def test_rebalance_on_unregister(self):
        kernel = make_kernel()
        cluster = DetectionCluster(
            kernel, DetectorConfig(interval=1.0), shards=2
        )
        first, second = build_allocators(kernel, 2)
        cluster.register(first)
        cluster.register(second)
        assert cluster.offsets == (0.0, 0.5)
        cluster.unregister(second)
        # Only one shard still has monitors; no stagger needed.
        assert cluster.offsets == (0.0, 0.0)

    def test_stagger_disabled_keeps_zero_offsets(self):
        kernel = make_kernel()
        cluster = DetectionCluster(
            kernel, DetectorConfig(interval=1.0, stagger=False), shards=3
        )
        for monitor in build_allocators(kernel, 3):
            cluster.register(monitor)
        assert cluster.offsets == (0.0, 0.0, 0.0)

    def test_staggered_captures_never_coincide(self):
        kernel = make_kernel()
        config = DetectorConfig(interval=0.5, **QUIET)
        cluster = DetectionCluster(kernel, config, shards=2)
        for monitor in build_allocators(kernel, 2):
            cluster.register(monitor)
        capture_times = {0: [], 1: []}
        for shard in cluster.shards:
            original = shard.engine.capture_phase

            def traced(shard=shard, original=original):
                capture_times[shard.index].append(kernel.now())
                return original()

            shard.engine.capture_phase = traced
        cluster.spawn_processes()
        kernel.run(until=4.0)
        cluster.stop()
        assert capture_times[0] and capture_times[1]
        overlap = set(capture_times[0]) & set(capture_times[1])
        assert not overlap


def run_determinism_workload(shards):
    kernel = make_kernel()
    allocators = build_allocators(kernel, 3)
    spawn_allocator_workload(kernel, allocators)
    config = DetectorConfig(interval=0.25, **QUIET)
    cluster = DetectionCluster(kernel, config, shards=shards)
    for allocator in allocators:
        cluster.register(allocator)
    cluster.spawn_processes()
    kernel.run(until=8.0)
    cluster.stop()
    return cluster


class TestMergedReportDeterminism:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_same_reports_as_single_shard(self, shards):
        baseline = run_determinism_workload(1)
        sharded = run_determinism_workload(shards)

        def tuples(cluster):
            return sorted(
                (
                    report.rule_id,
                    report.pids,
                    report.detected_at,
                    report.confidence,
                )
                for report in cluster.reports
            )

        assert tuples(baseline), "workload must produce at least one report"
        assert tuples(sharded) == tuples(baseline)

    def test_merge_order_is_deterministic(self):
        cluster = run_determinism_workload(2)
        merged = cluster.reports
        keys = [(r.detected_at,) for r in merged]
        assert keys == sorted(keys)
        # Merged view equals the union of the per-monitor streams.
        per_monitor = cluster.reports_by_monitor()
        assert sum(len(v) for v in per_monitor.values()) == len(merged)

    def test_reporting_surface_matches_single_engine(self):
        cluster = run_determinism_workload(2)
        kernel = make_kernel()
        allocators = build_allocators(kernel, 3)
        spawn_allocator_workload(kernel, allocators)
        engine = DetectionEngine(
            kernel, DetectorConfig(interval=0.25, **QUIET)
        )
        for allocator in allocators:
            engine.register(allocator)
        from repro.detection import engine_process

        kernel.spawn(engine_process(engine), "engine")
        kernel.run(until=8.0)
        engine.stop()
        assert cluster.clean == engine.clean
        assert cluster.confirmed_clean == engine.confirmed_clean
        assert cluster.implicated_faults() == engine.implicated_faults()
        assert {
            r.rule_id for r in cluster.reports
        } == {r.rule_id for r in engine.reports}

    def test_statistics_from_cluster(self):
        cluster = run_determinism_workload(2)
        stats = FaultStatistics.from_engine(cluster)
        assert stats.total_reports == len(cluster.reports)
        assert stats.counters["checkpoints_run"] > 0

    def test_hot_path_counters_aggregate_across_shards(self):
        cluster = run_determinism_workload(2)
        # Every evaluated window is either a carried hit or a rebase.
        assert (
            cluster.incremental_hits + cluster.incremental_rebases
            == cluster.evaluations_run
        )
        assert cluster.incremental_hits > 0
        assert cluster.staged_flushes > 0
        # One world-stop sample per phase-1 atomic section, across shards.
        samples = cluster.worldstop_samples
        assert len(samples) == cluster.atomic_sections
        p50 = cluster.worldstop_percentile(0.5)
        p99 = cluster.worldstop_percentile(0.99)
        assert 0.0 < p50 <= p99 <= cluster.worldstop_max
        for stat in cluster.shard_stats():
            assert "incremental_hits" in stat
            assert "staged_flushes" in stat


class TestWorkerPool:
    def test_thread_kernel_evaluates_in_pool(self):
        kernel = ThreadKernel(time_scale=FAST)
        allocators = [
            SingleResourceAllocator(kernel, history=HistoryDatabase())
            for __ in range(4)
        ]
        config = DetectorConfig(interval=0.5, **QUIET)
        cluster = DetectionCluster(kernel, config, shards=2)
        for allocator in allocators:
            cluster.register(allocator)
        assert cluster._pool is not None

        def user(allocator):
            for __ in range(4):
                yield Delay(0.1)
                yield from allocator.request()
                yield Delay(0.05)
                yield from allocator.release()

        for index, allocator in enumerate(allocators):
            kernel.spawn(user(allocator), f"user-{index}")
        cluster.spawn_processes()
        kernel.run(until=4.0)
        cluster.stop()
        assert cluster.clean
        assert cluster.captures_taken > 0
        # Every capture got its offloaded evaluation.
        assert cluster.evaluations_run == cluster.captures_taken
        assert cluster.checkpoints_run > 0

    def test_sim_kernel_stays_inline(self):
        kernel = make_kernel()
        cluster = DetectionCluster(kernel, shards=2)
        assert cluster._pool is None

    def test_manual_checkpoint_awaits_pool(self):
        kernel = ThreadKernel(time_scale=FAST)
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        cluster = DetectionCluster(
            kernel, DetectorConfig(interval=0.5, **QUIET), shards=1
        )
        cluster.register(allocator)
        kernel.run(until=0.2)
        cluster.checkpoint()
        cluster.stop()
        assert cluster.evaluations_run == cluster.captures_taken


class TestShardFailureIsolation:
    def test_sabotaged_shard_quarantines_while_others_detect(self):
        kernel = make_kernel()
        allocators = build_allocators(kernel, 2)
        spawn_allocator_workload(kernel, allocators, rogue_on=1)
        config = DetectorConfig(interval=0.25, **QUIET)
        cluster = DetectionCluster(kernel, config, shards=2)
        broken = cluster.register(allocators[0], shard=0)
        cluster.register(allocators[1], shard=1)
        sabotage_entry(broken)
        cluster.spawn_processes()
        kernel.run(until=8.0)
        cluster.stop()
        # Shard 0's monitor tripped its breaker (it may have reclosed by
        # now once the sabotage healed); shard 1 still reported the rogue
        # release.
        assert broken.breaker.times_opened >= 1
        assert any(
            record.label == broken.label
            for record in cluster.quarantine_report()
        )
        shard1_reports = cluster.reports_by_monitor()[
            cluster.entries[1].label
        ]
        assert shard1_reports, "healthy shard must keep detecting"


class TestUnregisterQuarantineRecord:
    def test_unregister_retires_quarantine_record(self):
        kernel = make_kernel()
        engine = DetectionEngine(
            kernel, DetectorConfig(interval=0.25, **QUIET)
        )
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        entry = engine.register(allocator)
        sabotage_entry(entry)
        kernel.spawn(iter([Delay(2.0)]), "clock")
        from repro.detection import engine_process

        kernel.spawn(engine_process(engine, rounds=5), "engine")
        kernel.run(until=3.0)
        assert entry.breaker.transitions or entry.breaker.consecutive_failures
        before = engine.quarantine_report()
        assert any(record.label == entry.label for record in before)
        engine.unregister(entry)
        after = engine.quarantine_report()
        # The record survives unregistration instead of leaking away.
        assert any(record.label == entry.label for record in after)
        assert engine.retired_quarantines

    def test_unregister_without_breaker_history_retires_nothing(self):
        kernel = make_kernel()
        engine = DetectionEngine(kernel)
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        entry = engine.register(allocator)
        engine.unregister(entry)
        assert engine.retired_quarantines == []
        assert engine.quarantine_report() == []


class TestDurableCluster:
    def test_crash_one_shard_recovery(self, tmp_path):
        def build(root):
            kernel = make_kernel()
            allocators = build_allocators(kernel, 2)
            spawn_allocator_workload(kernel, allocators, rogue_on=0)
            config = DetectorConfig(interval=0.25, **QUIET)
            cluster = DetectionCluster(
                kernel, config, shards=2, durable_root=root
            )
            cluster.register(allocators[0], shard=0)
            cluster.register(allocators[1], shard=1)
            return kernel, cluster

        kernel, cluster = build(tmp_path / "state")
        cluster.baseline()
        cluster.spawn_processes()
        kernel.run(until=8.0)
        cluster.stop()
        delivered = [
            (r.rule_id, r.pids, r.detected_at)
            for r in cluster.delivered_reports
        ]
        assert delivered, "rogue release must be journaled"

        # "Crash": drop the cluster without closing anything else, then
        # rebuild the same fleet over the same root and recover.
        kernel2, restarted = build(tmp_path / "state")
        summaries = restarted.recover()
        assert len(summaries) == 2
        recovered = [
            (r.rule_id, r.pids, r.detected_at)
            for r in restarted.delivered_reports
        ]
        assert recovered == delivered
        restarted.close()

    def test_durability_counters_summed(self, tmp_path):
        kernel = make_kernel()
        cluster = DetectionCluster(
            kernel,
            DetectorConfig(interval=0.5, **QUIET),
            shards=2,
            durable_root=tmp_path / "d",
        )
        for monitor in build_allocators(kernel, 2):
            cluster.register(monitor)
        cluster.baseline()
        cluster.spawn_processes()
        kernel.run(until=2.0)
        cluster.stop()
        counters = cluster.durability_counters
        assert counters["snapshots_written"] >= 2


class TestMergedEvents:
    def test_merge_event_streams_orders_by_time(self):
        kernel = make_kernel()
        allocators = build_allocators(kernel, 2)
        spawn_allocator_workload(kernel, allocators)
        cluster = DetectionCluster(
            kernel, DetectorConfig(interval=0.5, **QUIET), shards=2
        )
        for allocator in allocators:
            cluster.register(allocator)
        kernel.run(until=1.0)
        merged = cluster.merged_events
        assert merged
        times = [event.time for event in merged]
        assert times == sorted(times)
        streams = [entry.history.pending_events for entry in cluster.entries]
        assert merge_event_streams(streams) == merged
        assert len(merged) == sum(len(stream) for stream in streams)


class TestBuildFleetShardLabels:
    def test_build_fleet_sets_scenario_shard_labels(self):
        from repro.workloads import build_scenario  # noqa: F401 — import check
        from repro.workloads.scenarios import build_fleet

        kernel = make_kernel()
        fleet = build_fleet(kernel, 6)
        assert all(run.shard_label == run.name for run in fleet)
        labels = {run.shard_label for run in fleet}
        assert labels == {"allocator", "coordinator", "manager"}

    def test_label_policy_colocates_fleet_scenarios(self):
        from repro.workloads.scenarios import build_fleet

        kernel = make_kernel()
        fleet = build_fleet(kernel, 6)
        cluster = DetectionCluster(kernel, shards=3, policy=LabelSharding())
        for run in fleet:
            cluster.register(run.monitor, group=run.shard_label)
        by_label = {}
        for run in fleet:
            by_label.setdefault(run.shard_label, set()).add(
                cluster.shard_of(run.monitor)
            )
        assert all(len(shards) == 1 for shards in by_label.values())
