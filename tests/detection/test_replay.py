"""Unit tests for the checking-list replay machine (hand-built sequences).

Each test constructs a small scheduling event sequence by hand and asserts
exactly which ST-rules the replay flags — the machine's per-rule contract.
"""

import pytest

from repro.detection.replay import ReplayMachine
from repro.detection.rules import STRule
from repro.history.events import (
    enter_event,
    signal_event,
    signal_exit_event,
    wait_event,
)
from repro.history.states import QueueEntry, SchedulingState
from repro.monitor import Discipline, MonitorDeclaration, MonitorType


def declaration(discipline=Discipline.SIGNAL_EXIT):
    return MonitorDeclaration(
        name="m",
        mtype=MonitorType.OPERATION_MANAGER,
        procedures=("Op", "Other"),
        conditions=("ready",),
        discipline=discipline,
    )


def empty_state(time=0.0, **overrides):
    base = dict(
        time=time,
        entry_queue=(),
        cond_queues={"ready": ()},
        running=(),
    )
    base.update(overrides)
    return SchedulingState(**base)


def machine(base=None, discipline=Discipline.SIGNAL_EXIT):
    return ReplayMachine(declaration(discipline), base or empty_state())


def rules_of(m):
    return [violation.rule for violation in m.violations]


class TestCleanSequences:
    def test_enter_exit(self):
        m = machine()
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(signal_exit_event(1, 1, "Op", 0.2, 0))
        assert m.violations == []
        assert m.running == []

    def test_contended_entry_and_inferred_admission(self):
        m = machine()
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(enter_event(1, 2, "Op", 0.2, 0))
        m.process(signal_exit_event(2, 1, "Op", 0.3, 0))
        # P2 inferred-admitted by P1's exit:
        m.process(signal_exit_event(3, 2, "Op", 0.4, 0))
        assert m.violations == []

    def test_wait_then_signal_handoff(self):
        m = machine()
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(wait_event(1, 1, "Op", "ready", 0.2))
        m.process(enter_event(2, 2, "Other", 0.3, 1))
        m.process(signal_exit_event(3, 2, "Other", 0.4, 1, cond="ready"))
        # P1 now holds the monitor again:
        m.process(signal_exit_event(4, 1, "Op", 0.5, 0))
        assert m.violations == []


class TestPerEventViolations:
    def test_double_successful_enter_flags_3c_and_3a(self):
        m = machine()
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(enter_event(1, 2, "Op", 0.2, 1))
        rules = rules_of(m)
        assert STRule.ENTER_TAKES_FREE_MONITOR in rules
        assert STRule.ONE_INSIDE in rules

    def test_blocked_enter_on_free_monitor_flags_3d(self):
        m = machine()
        m.process(enter_event(0, 1, "Op", 0.1, 0))
        assert rules_of(m) == [STRule.BLOCKED_MEANS_BUSY]

    def test_wait_without_entering_flags_3b(self):
        m = machine()
        m.process(wait_event(0, 1, "Op", "ready", 0.1))
        assert STRule.CALLER_IS_RUNNING in rules_of(m)

    def test_event_while_on_entry_queue_flags_st4(self):
        m = machine()
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(enter_event(1, 2, "Op", 0.2, 0))
        # P2 acts although it is still queued:
        m.process(signal_exit_event(2, 2, "Op", 0.3, 0))
        assert STRule.EVENT_WHILE_BLOCKED in rules_of(m)

    def test_event_while_on_condition_queue_flags_st4(self):
        m = machine()
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(wait_event(1, 1, "Op", "ready", 0.2))
        m.process(signal_exit_event(2, 1, "Op", 0.3, 0))
        assert STRule.EVENT_WHILE_BLOCKED in rules_of(m)

    def test_signal_claiming_resume_with_empty_queue_flags_sg(self):
        m = machine()
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(signal_exit_event(1, 1, "Op", 0.2, 1, cond="ready"))
        assert STRule.SIGNAL_CONSISTENT in rules_of(m)

    def test_signal_resuming_nobody_with_waiters_flags_sg(self):
        m = machine()
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(wait_event(1, 1, "Op", "ready", 0.2))
        m.process(enter_event(2, 2, "Op", 0.3, 1))
        m.process(signal_exit_event(3, 2, "Op", 0.4, 0, cond="ready"))
        assert STRule.SIGNAL_CONSISTENT in rules_of(m)


class TestCheckpointComparison:
    def test_matching_state_is_clean(self):
        m = machine()
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        actual = empty_state(
            time=1.0, running=(QueueEntry(1, "Op", 0.1),)
        )
        m.compare_with(actual)
        assert m.violations == []

    def test_entry_queue_mismatch_flags_st1(self):
        m = machine()
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(enter_event(1, 2, "Op", 0.2, 0))
        actual = empty_state(
            time=1.0, running=(QueueEntry(1, "Op", 0.1),), entry_queue=()
        )
        m.compare_with(actual)
        assert STRule.ENTRY_QUEUE_MATCHES in rules_of(m)

    def test_entry_queue_order_matters(self):
        base = empty_state(
            entry_queue=(QueueEntry(1, "Op", 0.0), QueueEntry(2, "Op", 0.0)),
            running=(QueueEntry(9, "Op", 0.0),),
        )
        m = machine(base)
        actual = empty_state(
            time=1.0,
            entry_queue=(QueueEntry(2, "Op", 0.0), QueueEntry(1, "Op", 0.0)),
            running=(QueueEntry(9, "Op", 0.0),),
        )
        m.compare_with(actual)
        assert STRule.ENTRY_QUEUE_MATCHES in rules_of(m)

    def test_cond_queue_mismatch_flags_st2(self):
        m = machine()
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(wait_event(1, 1, "Op", "ready", 0.2))
        actual = empty_state(time=1.0)  # actual lost the waiter
        m.compare_with(actual)
        assert STRule.COND_QUEUE_MATCHES in rules_of(m)

    def test_running_mismatch_flags_str(self):
        m = machine()
        actual = empty_state(time=1.0, running=(QueueEntry(7, "Op", 0.5),))
        m.compare_with(actual)
        assert STRule.RUNNING_MATCHES in rules_of(m)

    def test_snapshot_with_two_running_flags_3a(self):
        m = machine()
        actual = empty_state(
            time=1.0,
            running=(QueueEntry(1, "Op", 0.5), QueueEntry(2, "Op", 0.6)),
        )
        m.compare_with(actual)
        assert STRule.ONE_INSIDE in rules_of(m)


class TestTimers:
    def test_tmax_on_running(self):
        base = empty_state(running=(QueueEntry(1, "Op", 0.0),))
        m = machine(base)
        actual = empty_state(time=10.0, running=(QueueEntry(1, "Op", 0.0),))
        m.compare_with(actual, tmax=5.0)
        assert STRule.TMAX_EXCEEDED in rules_of(m)

    def test_tmax_on_condition_queue(self):
        base = empty_state(
            cond_queues={"ready": (QueueEntry(1, "Op", 0.0),)}
        )
        m = machine(base)
        actual = empty_state(
            time=10.0, cond_queues={"ready": (QueueEntry(1, "Op", 0.0),)}
        )
        m.compare_with(actual, tmax=5.0)
        assert STRule.TMAX_EXCEEDED in rules_of(m)

    def test_tio_on_entry_queue(self):
        base = empty_state(
            entry_queue=(QueueEntry(1, "Op", 0.0),),
            running=(QueueEntry(2, "Op", 0.0),),
        )
        m = machine(base)
        actual = empty_state(
            time=10.0,
            entry_queue=(QueueEntry(1, "Op", 0.0),),
            running=(QueueEntry(2, "Op", 0.0),),
        )
        m.compare_with(actual, tio=5.0)
        assert STRule.TIO_EXCEEDED in rules_of(m)

    def test_timers_disabled_when_none(self):
        base = empty_state(running=(QueueEntry(1, "Op", 0.0),))
        m = machine(base)
        actual = empty_state(time=100.0, running=(QueueEntry(1, "Op", 0.0),))
        m.compare_with(actual, tmax=None, tio=None)
        assert m.violations == []

    def test_within_bounds_is_clean(self):
        base = empty_state(running=(QueueEntry(1, "Op", 0.0),))
        m = machine(base)
        actual = empty_state(time=3.0, running=(QueueEntry(1, "Op", 0.0),))
        m.compare_with(actual, tmax=5.0, tio=5.0)
        assert m.violations == []


class TestExtendedDisciplines:
    def test_hoare_signal_moves_signaller_to_urgent(self):
        m = machine(discipline=Discipline.SIGNAL_AND_WAIT)
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(wait_event(1, 1, "Op", "ready", 0.2))
        m.process(enter_event(2, 2, "Op", 0.3, 1))
        m.process(signal_event(3, 2, "Op", "ready", 0.4, 1))
        assert m.violations == []
        assert [e.pid for e in m.running] == [1]
        assert [e.pid for e in m.urgent] == [2]
        # the waiter's exit readmits the urgent signaller
        m.process(signal_exit_event(4, 1, "Op", 0.5, 0))
        assert [e.pid for e in m.running] == [2]
        assert m.urgent == []
        assert m.violations == []

    def test_mesa_signal_requeues_waiter(self):
        m = machine(discipline=Discipline.SIGNAL_AND_CONTINUE)
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(wait_event(1, 1, "Op", "ready", 0.2))
        m.process(enter_event(2, 2, "Op", 0.3, 1))
        m.process(signal_event(3, 2, "Op", "ready", 0.4, 1))
        assert m.violations == []
        assert [e.pid for e in m.running] == [2]
        assert [e.pid for e in m.enter0] == [1]
        # the signaller's exit admits the requeued waiter
        m.process(signal_exit_event(4, 2, "Op", 0.5, 0))
        assert [e.pid for e in m.running] == [1]
        assert m.violations == []

    def test_signal_with_empty_queue_flag1_flags_sg(self):
        m = machine(discipline=Discipline.SIGNAL_AND_WAIT)
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(signal_event(1, 1, "Op", "ready", 0.2, 1))
        assert STRule.SIGNAL_CONSISTENT in rules_of(m)


class TestRemainingBranches:
    def test_hoare_signal_flag0_with_waiters_flags_sg(self):
        m = machine(discipline=Discipline.SIGNAL_AND_WAIT)
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(wait_event(1, 1, "Op", "ready", 0.2))
        m.process(enter_event(2, 2, "Op", 0.3, 1))
        m.process(signal_event(3, 2, "Op", "ready", 0.4, 0))
        assert STRule.SIGNAL_CONSISTENT in rules_of(m)

    def test_urgent_mismatch_reported_at_checkpoint(self):
        m = machine(discipline=Discipline.SIGNAL_AND_WAIT)
        actual = empty_state(
            time=1.0, urgent=(QueueEntry(9, "Op", 0.5),)
        )
        m.compare_with(actual)
        assert STRule.RUNNING_MATCHES in rules_of(m)

    def test_signal_by_non_running_process_flags_3b(self):
        m = machine(discipline=Discipline.SIGNAL_AND_CONTINUE)
        m.process(signal_event(0, 5, "Op", "ready", 0.1, 0))
        assert STRule.CALLER_IS_RUNNING in rules_of(m)

    def test_mesa_signal_empty_queue_flag1_flags_sg(self):
        m = machine(discipline=Discipline.SIGNAL_AND_CONTINUE)
        m.process(enter_event(0, 1, "Op", 0.1, 1))
        m.process(signal_event(1, 1, "Op", "ready", 0.2, 1))
        assert STRule.SIGNAL_CONSISTENT in rules_of(m)
