"""DetectionSession facade: construction, lifecycle, sharding passthrough,
config presets, and the deprecation shims over the old entry points."""

import warnings

import pytest

from repro.apps import BoundedBuffer, SingleResourceAllocator
from repro.detection import (
    DetectionSession,
    DetectorConfig,
    FaultDetector,
    detector_process,
)
from repro.detection import detector as detector_module
from repro.history import HistoryDatabase
from repro.kernel import Delay, FifoPolicy, SimKernel


QUIET = dict(tmax=120.0, tio=120.0, tlimit=120.0)


def make_kernel():
    return SimKernel(FifoPolicy(), on_deadlock="stop")


def build_allocator(kernel):
    return SingleResourceAllocator(kernel, history=HistoryDatabase())


def spawn_users(kernel, allocator, *, rogue=False):
    def user():
        for __ in range(4):
            yield Delay(0.1)
            yield from allocator.request()
            yield Delay(0.05)
            yield from allocator.release()

    kernel.spawn(user(), "user")
    if rogue:

        def rogue_proc():
            yield Delay(3.0)
            yield from allocator.release()

        kernel.spawn(rogue_proc(), "rogue")


class TestSessionLifecycle:
    def test_clean_run(self):
        kernel = make_kernel()
        allocator = build_allocator(kernel)
        spawn_users(kernel, allocator)
        session = DetectionSession(
            kernel,
            monitors=[allocator],
            config=DetectorConfig(interval=0.25, **QUIET),
        )
        session.start()
        assert session.started
        kernel.run(until=4.0)
        session.stop()
        assert session.clean
        assert session.confirmed_clean
        assert session.reports == []
        assert session.implicated_faults() == frozenset()

    def test_faulty_run_reports(self):
        kernel = make_kernel()
        allocator = build_allocator(kernel)
        spawn_users(kernel, allocator, rogue=True)
        session = DetectionSession(
            kernel,
            monitors=[allocator],
            config=DetectorConfig(interval=0.25, **QUIET),
        )
        session.start()
        kernel.run(until=5.0)
        session.stop()
        assert not session.clean
        assert session.reports
        assert session.reports_by_monitor()
        stats = session.statistics()
        assert stats.total_reports == len(session.reports)

    def test_start_twice_raises(self):
        kernel = make_kernel()
        session = DetectionSession(kernel, monitors=[build_allocator(kernel)])
        session.start()
        with pytest.raises(RuntimeError, match="already started"):
            session.start()

    def test_register_after_construction(self):
        kernel = make_kernel()
        session = DetectionSession(kernel)
        entry = session.register(build_allocator(kernel), label="late")
        assert entry.label == "late"
        assert session.cluster.entries == (entry,)

    def test_sharded_session_staggers(self):
        kernel = make_kernel()
        monitors = [build_allocator(kernel) for __ in range(2)]
        session = DetectionSession(
            kernel,
            monitors=monitors,
            config=DetectorConfig(interval=1.0, **QUIET),
            shards=2,
        )
        assert session.cluster.shard_count == 2
        assert session.cluster.offsets == (0.0, 0.5)

    def test_durable_session_round_trip(self, tmp_path):
        kernel = make_kernel()
        allocator = build_allocator(kernel)
        spawn_users(kernel, allocator, rogue=True)
        session = DetectionSession(
            kernel,
            monitors=[allocator],
            config=DetectorConfig(interval=0.25, **QUIET),
            durable_dir=tmp_path / "state",
        )
        assert session.durable
        session.start()  # baselines before spawning
        kernel.run(until=5.0)
        session.stop()
        delivered = [
            (r.rule_id, r.detected_at) for r in session.delivered_reports
        ]
        assert delivered

        kernel2 = make_kernel()
        restarted = DetectionSession(
            kernel2,
            monitors=[build_allocator(kernel2)],
            config=DetectorConfig(interval=0.25, **QUIET),
            durable_dir=tmp_path / "state",
        )
        restarted.recover()
        assert [
            (r.rule_id, r.detected_at) for r in restarted.delivered_reports
        ] == delivered
        restarted.close()

    def test_getattr_passthrough_to_cluster(self):
        kernel = make_kernel()
        session = DetectionSession(kernel, monitors=[build_allocator(kernel)])
        assert session.checkpoints_run == 0
        assert session.shard_stats()
        with pytest.raises(AttributeError):
            session.no_such_attribute


class TestPresets:
    def test_paper_preset_is_default_config(self):
        assert DetectorConfig.preset("paper") == DetectorConfig()

    def test_bounded_preset_sets_budgets(self):
        config = DetectorConfig.preset("bounded")
        assert config.checkpoint_budget == 0.5
        assert config.checkpoint_retries == 2
        assert config.stall_timeout == 10.0

    def test_adaptive_preset(self):
        assert DetectorConfig.preset("adaptive").adaptive_intervals

    def test_durable_preset(self):
        config = DetectorConfig.preset("durable")
        assert config.checkpoint_retries == 3
        assert config.stall_timeout == 15.0

    def test_preset_overrides(self):
        config = DetectorConfig.preset("paper", interval=2.0, shards=4)
        assert config.interval == 2.0
        assert config.shards == 4

    def test_unknown_preset_lists_names(self):
        with pytest.raises(ValueError, match="adaptive.*bounded.*durable.*paper"):
            DetectorConfig.preset("turbo")


class TestDeprecatedShims:
    def test_fault_detector_warns_once(self):
        detector_module._warned.clear()
        kernel = make_kernel()
        buffer = BoundedBuffer(kernel, 2, history=HistoryDatabase())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            FaultDetector(buffer)
            FaultDetector(buffer)
        messages = [
            str(w.message)
            for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert len(messages) == 1
        assert messages[0].startswith("FaultDetector is deprecated")
        assert "DetectionSession" in messages[0]

    def test_detector_process_warns_once(self):
        detector_module._warned.clear()
        kernel = make_kernel()
        buffer = BoundedBuffer(kernel, 2, history=HistoryDatabase())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            detector = FaultDetector(buffer)
            kernel.spawn(detector_process(detector, rounds=1), "detector")
            kernel.spawn(detector_process(detector, rounds=1), "detector-2")
        process_warnings = [
            str(w.message)
            for w in caught
            if issubclass(w.category, DeprecationWarning)
            and str(w.message).startswith("detector_process is deprecated")
        ]
        assert len(process_warnings) == 1

    def test_shims_still_work(self):
        detector_module._warned.clear()
        kernel = make_kernel()
        allocator = build_allocator(kernel)
        spawn_users(kernel, allocator)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            detector = FaultDetector(
                allocator, DetectorConfig(interval=0.25, **QUIET)
            )
            kernel.spawn(detector_process(detector), "detector")
        kernel.run(until=4.0)
        assert detector.clean
