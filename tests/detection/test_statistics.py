"""Tests for the fault-frequency statistics aggregator."""

import pytest

from repro.detection import FaultClass, FaultLevel, FaultStatistics, STRule
from repro.detection.reports import FaultReport


def report(rule, monitor="m", at=1.0, pids=()):
    return FaultReport(
        rule=rule, message="x", monitor=monitor, detected_at=at, pids=pids
    )


class TestIntake:
    def test_empty(self):
        stats = FaultStatistics()
        assert stats.total_reports == 0
        assert stats.most_frequent_fault() is None
        assert stats.window == (None, None)
        assert stats.render() == "no fault reports recorded"

    def test_counts_by_rule_and_monitor(self):
        stats = FaultStatistics()
        stats.record(report(STRule.ONE_INSIDE, monitor="buffer"))
        stats.record(report(STRule.ONE_INSIDE, monitor="buffer"))
        stats.record(report(STRule.TIO_EXCEEDED, monitor="allocator"))
        assert stats.total_reports == 3
        assert stats.by_rule["ST-3a"] == 2
        assert stats.by_rule["ST-6"] == 1
        assert stats.by_monitor["buffer"] == 2
        assert stats.by_monitor["allocator"] == 1

    def test_fault_class_implication_counting(self):
        stats = FaultStatistics()
        stats.record(report(STRule.NO_DUPLICATE_REQUEST))
        assert stats.frequency(FaultClass.REQUEST_WHILE_HOLDING) == 1
        assert stats.most_frequent_fault() is FaultClass.REQUEST_WHILE_HOLDING
        assert stats.by_level[FaultLevel.USER_PROCESS] == 1

    def test_window_tracks_extremes(self):
        stats = FaultStatistics()
        stats.record(report(STRule.ONE_INSIDE, at=5.0))
        stats.record(report(STRule.ONE_INSIDE, at=2.0))
        stats.record(report(STRule.ONE_INSIDE, at=9.0))
        assert stats.window == (2.0, 9.0)


class TestFromDetectors:
    def test_from_detector_run(self, kernel):
        from repro.apps import SingleResourceAllocator
        from repro.detection import FaultDetector
        from repro.history import HistoryDatabase

        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        detector = FaultDetector(allocator)

        def buggy():
            yield from allocator.release()

        kernel.spawn(buggy())
        kernel.run(until=1.0)
        stats = FaultStatistics.from_detector(detector)
        assert stats.total_reports >= 1
        assert stats.frequency(FaultClass.RELEASE_BEFORE_REQUEST) >= 1

    def test_render_contains_tables(self):
        stats = FaultStatistics()
        stats.record(report(STRule.ONE_INSIDE, monitor="buffer", at=3.0))
        text = stats.render()
        assert "by rule" in text
        assert "by implicated fault class" in text
        assert "buffer" in text
        assert "ST-3a" in text


class TestConfidenceSplit:
    def degraded_report(self, rule, **kwargs):
        import dataclasses

        from repro.detection import Confidence

        return dataclasses.replace(
            report(rule, **kwargs), confidence=Confidence.DEGRADED
        )

    def test_by_confidence_counter(self):
        from repro.detection import Confidence

        stats = FaultStatistics()
        stats.record(report(STRule.ONE_INSIDE))
        stats.record(report(STRule.TIO_EXCEEDED))
        stats.record(self.degraded_report(STRule.TMAX_EXCEEDED))
        assert stats.by_confidence[Confidence.CONFIRMED] == 2
        assert stats.by_confidence[Confidence.DEGRADED] == 1

    def test_per_fault_class_split(self):
        stats = FaultStatistics()
        stats.record(report(STRule.TMAX_EXCEEDED))
        stats.record(self.degraded_report(STRule.TMAX_EXCEEDED))
        stats.record(self.degraded_report(STRule.TMAX_EXCEEDED))
        assert stats.confirmed(FaultClass.TERMINATED_INSIDE) == 1
        assert stats.degraded(FaultClass.TERMINATED_INSIDE) == 2
        # A class never reported splits to zero on both sides.
        assert stats.confirmed(FaultClass.RELEASE_BEFORE_REQUEST) == 0
        assert stats.degraded(FaultClass.RELEASE_BEFORE_REQUEST) == 0

    def test_render_header_shows_split(self):
        stats = FaultStatistics()
        stats.record(report(STRule.ONE_INSIDE))
        stats.record(self.degraded_report(STRule.TMAX_EXCEEDED))
        rendered = stats.render()
        assert "(1 confirmed, 1 degraded)" in rendered
        assert "confirmed" in rendered.splitlines()[2] or "confirmed" in rendered

    def test_render_table_has_confidence_columns(self):
        stats = FaultStatistics()
        stats.record(report(STRule.TMAX_EXCEEDED))
        stats.record(self.degraded_report(STRule.TMAX_EXCEEDED))
        rendered = stats.render()
        header_line = next(
            line
            for line in rendered.splitlines()
            if "fault class" in line and "level" in line
        )
        assert "confirmed" in header_line
        assert "degraded" in header_line
