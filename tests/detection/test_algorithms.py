"""Tests for Algorithm-1, Algorithm-2 and Algorithm-3 over segments."""

import pytest

from repro.detection.algorithm1 import check_general_concurrency_control
from repro.detection.algorithm2 import ResourceStateChecker
from repro.detection.algorithm3 import CallingOrderChecker
from repro.detection.rules import STRule
from repro.history.database import Segment
from repro.history.events import enter_event, signal_exit_event, wait_event
from repro.history.states import QueueEntry, SchedulingState
from repro.monitor import MonitorDeclaration, MonitorType


def coordinator_declaration(rmax=3):
    return MonitorDeclaration(
        name="buffer",
        mtype=MonitorType.COMMUNICATION_COORDINATOR,
        procedures=("Send", "Receive"),
        conditions=("full", "empty"),
        rmax=rmax,
    )


def allocator_declaration():
    return MonitorDeclaration(
        name="allocator",
        mtype=MonitorType.RESOURCE_ALLOCATOR,
        procedures=("Request", "Release"),
        conditions=("free",),
        call_order="(Request ; Release)*",
    )


def state(time=0.0, resource=3, **overrides):
    base = dict(
        time=time,
        entry_queue=(),
        cond_queues={"full": (), "empty": ()},
        running=(),
        resource_count=resource,
    )
    base.update(overrides)
    return SchedulingState(**base)


class TestAlgorithm1:
    def test_clean_window(self):
        events = (
            enter_event(0, 1, "Send", 0.1, 1),
            signal_exit_event(1, 1, "Send", 0.2, 0, cond="empty"),
        )
        segment = Segment(state(0.0), events, state(1.0, resource=2))
        reports = check_general_concurrency_control(
            coordinator_declaration(), segment, tmax=5.0, tio=5.0
        )
        assert reports == []

    def test_window_detects_mutex_violation(self):
        events = (
            enter_event(0, 1, "Send", 0.1, 1),
            enter_event(1, 2, "Send", 0.2, 1),
        )
        segment = Segment(
            state(0.0),
            events,
            state(
                1.0,
                running=(QueueEntry(1, "Send", 0.1), QueueEntry(2, "Send", 0.2)),
            ),
        )
        reports = check_general_concurrency_control(
            coordinator_declaration(), segment
        )
        rules = {report.rule for report in reports}
        assert STRule.ONE_INSIDE in rules


class TestAlgorithm2:
    def checker(self):
        return ResourceStateChecker(coordinator_declaration())

    def test_applicable_requires_send_receive(self):
        assert self.checker().applicable
        other = MonitorDeclaration(
            name="shop",
            mtype=MonitorType.COMMUNICATION_COORDINATOR,
            procedures=("GetHaircut",),
            rmax=2,
        )
        assert not ResourceStateChecker(other).applicable

    def test_requires_rmax(self):
        decl = MonitorDeclaration(
            name="m",
            mtype=MonitorType.OPERATION_MANAGER,
            procedures=("Send", "Receive"),
        )
        with pytest.raises(ValueError):
            ResourceStateChecker(decl)

    def test_clean_send_receive_cycle(self):
        events = (
            enter_event(0, 1, "Send", 0.1, 1),
            signal_exit_event(1, 1, "Send", 0.2, 0, cond="empty"),
            enter_event(2, 2, "Receive", 0.3, 1),
            signal_exit_event(3, 2, "Receive", 0.4, 0, cond="full"),
        )
        segment = Segment(state(0.0), events, state(1.0, resource=3))
        assert self.checker().check_window(segment) == []

    def test_receive_overtaking_send_flags_7a(self):
        events = (
            enter_event(0, 2, "Receive", 0.3, 1),
            signal_exit_event(1, 2, "Receive", 0.4, 0, cond="full"),
        )
        segment = Segment(state(0.0), events, state(1.0, resource=4))
        reports = self.checker().check_window(segment)
        rules = {report.rule for report in reports}
        assert STRule.RESOURCE_INVARIANT in rules

    def test_send_beyond_capacity_flags_7a(self):
        checker = self.checker()
        events = []
        seq = 0
        for pid in range(1, 6):  # five sends into capacity 3, no receives
            events.append(enter_event(seq, pid, "Send", 0.1 * pid, 1))
            seq += 1
            events.append(
                signal_exit_event(seq, pid, "Send", 0.1 * pid + 0.05, 0, cond="empty")
            )
            seq += 1
        segment = Segment(state(0.0), tuple(events), state(1.0, resource=0))
        reports = checker.check_window(segment)
        rules = {report.rule for report in reports}
        assert STRule.RESOURCE_INVARIANT in rules

    def test_wait_on_full_with_free_slots_flags_7c(self):
        events = (
            enter_event(0, 1, "Send", 0.1, 1),
            wait_event(1, 1, "Send", "full", 0.2),
        )
        segment = Segment(state(0.0), events, state(1.0, resource=3,
            cond_queues={"full": (QueueEntry(1, "Send", 0.2),), "empty": ()}))
        reports = self.checker().check_window(segment)
        rules = {report.rule for report in reports}
        assert STRule.SEND_WAIT_CONSISTENT in rules

    def test_wait_on_empty_with_items_flags_7d(self):
        checker = self.checker()
        # one prior send leaves resource_no = 2
        warmup = (
            enter_event(0, 1, "Send", 0.1, 1),
            signal_exit_event(1, 1, "Send", 0.2, 0, cond="empty"),
            enter_event(2, 2, "Receive", 0.3, 1),
            wait_event(3, 2, "Receive", "empty", 0.4),
        )
        segment = Segment(state(0.0), warmup, state(1.0, resource=2,
            cond_queues={"full": (), "empty": (QueueEntry(2, "Receive", 0.4),)}))
        reports = checker.check_window(segment)
        rules = {report.rule for report in reports}
        assert STRule.RECEIVE_WAIT_CONSISTENT in rules

    def test_resource_delta_mismatch_flags_7b(self):
        events = (
            enter_event(0, 1, "Send", 0.1, 1),
            signal_exit_event(1, 1, "Send", 0.2, 0, cond="empty"),
        )
        # actual R# claims no slot was consumed
        segment = Segment(state(0.0), events, state(1.0, resource=3))
        reports = self.checker().check_window(segment)
        rules = {report.rule for report in reports}
        assert STRule.RESOURCE_DELTA_MATCHES in rules

    def test_counters_cumulative_across_windows(self):
        checker = self.checker()
        send = (
            enter_event(0, 1, "Send", 0.1, 1),
            signal_exit_event(1, 1, "Send", 0.2, 0, cond="empty"),
        )
        checker.check_window(Segment(state(0.0), send, state(1.0, resource=2)))
        assert checker.sends == 1
        receive = (
            enter_event(2, 2, "Receive", 1.1, 1),
            signal_exit_event(3, 2, "Receive", 1.2, 0, cond="full"),
        )
        checker.check_window(
            Segment(state(1.0, resource=2), receive, state(2.0, resource=3))
        )
        assert checker.receives == 1


class TestAlgorithm3:
    def test_clean_request_release(self):
        checker = CallingOrderChecker(allocator_declaration())
        reports = []
        reports += checker.on_event(enter_event(0, 1, "Request", 0.1, 1))
        reports += checker.on_event(
            signal_exit_event(1, 1, "Release", 0.3, 0, cond="free")
        )
        assert reports == []
        assert checker.holders() == ()

    def test_release_before_request_flags_8b(self):
        checker = CallingOrderChecker(allocator_declaration())
        reports = checker.on_event(enter_event(0, 1, "Release", 0.1, 1))
        rules = {report.rule for report in reports}
        assert STRule.RELEASE_REQUIRES_REQUEST in rules
        # The path expression flags it too:
        assert STRule.CALL_ORDER_VIOLATED in rules

    def test_double_request_flags_8a(self):
        checker = CallingOrderChecker(allocator_declaration())
        checker.on_event(enter_event(0, 1, "Request", 0.1, 1))
        reports = checker.on_event(enter_event(1, 1, "Request", 0.2, 0))
        rules = {report.rule for report in reports}
        assert STRule.NO_DUPLICATE_REQUEST in rules

    def test_holding_too_long_flags_8c(self):
        checker = CallingOrderChecker(allocator_declaration())
        checker.on_event(enter_event(0, 1, "Request", 0.1, 1))
        reports = checker.periodic(now=20.0, tlimit=10.0)
        assert [report.rule for report in reports] == [
            STRule.REQUEST_NOT_RELEASED
        ]
        assert reports[0].pids == (1,)

    def test_periodic_within_limit_is_clean(self):
        checker = CallingOrderChecker(allocator_declaration())
        checker.on_event(enter_event(0, 1, "Request", 0.1, 1))
        assert checker.periodic(now=5.0, tlimit=10.0) == []

    def test_independent_processes_tracked_separately(self):
        checker = CallingOrderChecker(allocator_declaration())
        reports = []
        reports += checker.on_event(enter_event(0, 1, "Request", 0.1, 1))
        reports += checker.on_event(enter_event(1, 2, "Request", 0.2, 0))
        reports += checker.on_event(
            signal_exit_event(2, 1, "Release", 0.3, 0, cond="free")
        )
        reports += checker.on_event(
            signal_exit_event(3, 2, "Release", 0.4, 0, cond="free")
        )
        assert reports == []

    def test_path_expression_generalised_ordering(self):
        decl = MonitorDeclaration(
            name="rw",
            mtype=MonitorType.RESOURCE_ALLOCATOR,
            procedures=("StartRead", "EndRead", "StartWrite", "EndWrite"),
            call_order="((StartRead ; EndRead) | (StartWrite ; EndWrite))*",
        )
        checker = CallingOrderChecker(decl)
        assert checker.on_event(enter_event(0, 1, "StartRead", 0.1, 1)) == []
        reports = checker.on_event(enter_event(1, 1, "EndWrite", 0.2, 1))
        assert [report.rule for report in reports] == [
            STRule.CALL_ORDER_VIOLATED
        ]

    def test_no_call_order_means_no_dfa(self):
        decl = MonitorDeclaration(
            name="a",
            mtype=MonitorType.RESOURCE_ALLOCATOR,
            procedures=("Request", "Release"),
        )
        checker = CallingOrderChecker(decl)
        assert checker.automaton is None
        # built-in Request-List rules still apply
        reports = checker.on_event(enter_event(0, 1, "Release", 0.1, 1))
        assert [report.rule for report in reports] == [
            STRule.RELEASE_REQUIRES_REQUEST
        ]
