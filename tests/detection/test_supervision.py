"""CheckpointSupervisor, CircuitBreaker quarantine, degraded-mode checking,
supervisor snapshot/restore, and the supervision config fields."""

import pytest

from repro.apps import BoundedBuffer, SingleResourceAllocator
from repro.detection import (
    BreakerState,
    CheckpointSupervisor,
    CircuitBreaker,
    Confidence,
    DetectionEngine,
    DetectorConfig,
    DROP_TOLERANT,
    STRule,
    is_drop_tolerant,
    supervisor_process,
)
from repro.history import BoundedHistory, HistoryDatabase
from repro.injection import sabotage_entry
from repro.kernel import Delay, RandomPolicy, SimKernel


def make_kernel(seed=0):
    return SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")


def spawn_buffer_load(kernel, buffer, items=10, *, pace=0.1):
    def producer():
        for item in range(items):
            yield Delay(pace)
            yield from buffer.send(item)

    def consumer():
        for __ in range(items):
            yield Delay(pace)
            yield from buffer.receive()

    kernel.spawn(producer(), "producer")
    kernel.spawn(consumer(), "consumer")


class TestCircuitBreaker:
    def test_opens_at_threshold_and_not_before(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0)
        breaker.record_failure(1.0, "boom")
        breaker.record_failure(2.0, "boom")
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(3.0, "boom")
        assert breaker.state is BreakerState.OPEN
        assert breaker.quarantined
        assert breaker.times_opened == 1

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0)
        breaker.record_failure(1.0, "boom")
        breaker.record_success(2.0)
        breaker.record_failure(3.0, "boom")
        assert breaker.state is BreakerState.CLOSED

    def test_denies_during_cooldown_then_probes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2.0)
        breaker.record_failure(1.0, "boom")
        assert not breaker.allow(2.0)
        assert not breaker.allow(2.9)
        assert breaker.allow(3.0)  # cooldown over: HALF_OPEN probe
        assert breaker.state is BreakerState.HALF_OPEN

    def test_failed_probe_reopens_successful_probe_recloses(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2.0)
        breaker.record_failure(0.0, "boom")
        assert breaker.allow(2.0)
        breaker.record_failure(2.0, "still broken")
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 2
        assert breaker.allow(4.0)
        breaker.record_success(4.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.times_reclosed == 1
        assert not breaker.quarantined

    def test_transitions_audit_trail(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0)
        breaker.record_failure(1.0, "boom")
        breaker.allow(2.0)
        breaker.record_success(2.0)
        assert [state for __, state in breaker.transitions] == [
            BreakerState.OPEN,
            BreakerState.HALF_OPEN,
            BreakerState.CLOSED,
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)


class TestQuarantineInEngine:
    def build(self, *, failures=2, threshold=2, cooldown=1.0):
        kernel = make_kernel()
        buffer = BoundedBuffer(kernel, capacity=3, history=HistoryDatabase())
        broken = SingleResourceAllocator(
            kernel, history=HistoryDatabase(), name="broken"
        )
        config = DetectorConfig(
            interval=0.5,
            tmax=60.0,
            tio=60.0,
            tlimit=60.0,
            breaker_failure_threshold=threshold,
            breaker_cooldown=cooldown,
        )
        engine = DetectionEngine(kernel, config)
        healthy = engine.register(buffer)
        entry = engine.register(broken)
        sabotage_entry(entry, failures=failures)
        spawn_buffer_load(kernel, buffer)
        return kernel, engine, healthy, entry

    def test_broken_monitor_quarantined_fleet_keeps_checking(self):
        kernel, engine, healthy, entry = self.build()
        supervisor = CheckpointSupervisor(engine)
        kernel.spawn(supervisor_process(supervisor, rounds=12), "supervisor")
        kernel.run(until=30)
        kernel.raise_failures()
        # Checkpoints keep completing even while one checker raises.
        assert supervisor.checkpoints_completed == 12
        assert supervisor.checkpoints_abandoned == 0
        assert healthy.checkpoints_run == 12
        # The broken entry opened, was skipped, probed, and re-closed.
        assert entry.breaker.times_opened >= 1
        assert entry.breaker.times_reclosed >= 1
        assert entry.breaker.state is BreakerState.CLOSED
        assert entry.checkpoints_skipped >= 1
        assert entry.checkpoints_run < 12
        assert engine.check_failures == 2

    def test_failing_probe_extends_quarantine(self):
        # 3 evaluator failures with threshold 2: open, failed probe
        # re-opens, second probe heals.
        kernel, engine, __, entry = self.build(failures=3)
        supervisor = CheckpointSupervisor(engine)
        kernel.spawn(supervisor_process(supervisor, rounds=14), "supervisor")
        kernel.run(until=30)
        kernel.raise_failures()
        assert entry.breaker.times_opened == 2
        assert entry.breaker.times_reclosed == 1
        assert entry.breaker.state is BreakerState.CLOSED

    def test_quarantine_report_lists_lifecycle(self):
        kernel, engine, __, entry = self.build()
        supervisor = CheckpointSupervisor(engine)
        kernel.spawn(supervisor_process(supervisor, rounds=10), "supervisor")
        kernel.run(until=30)
        records = engine.quarantine_report()
        assert [record.label for record in records] == [entry.label]
        rendered = records[0].render()
        assert "opened x" in rendered and entry.label in rendered
        assert repr(engine).count("quarantined=0")  # back to closed

    def test_engine_never_raises_out_of_checkpoint(self):
        kernel, engine, __, ___ = self.build(failures=50, cooldown=100.0)
        supervisor = CheckpointSupervisor(engine)
        kernel.spawn(supervisor_process(supervisor, rounds=10), "supervisor")
        kernel.run(until=30)
        kernel.raise_failures()  # nothing escaped to the kernel
        assert supervisor.checkpoints_completed == 10


class TestSupervisorRetries:
    def build_flaky(self, failing_attempts):
        """Engine whose checkpoint fails for the first N attempts."""
        kernel = make_kernel()
        buffer = BoundedBuffer(kernel, capacity=3, history=HistoryDatabase())
        config = DetectorConfig(
            interval=0.5, tmax=60.0, tio=60.0, tlimit=60.0,
            checkpoint_retries=2, retry_backoff=0.05,
        )
        engine = DetectionEngine(kernel, config)
        engine.register(buffer)
        inner = engine.checkpoint
        state = {"left": failing_attempts}

        def flaky():
            if state["left"] > 0:
                state["left"] -= 1
                raise RuntimeError("transient checkpoint failure")
            return inner()

        engine.checkpoint = flaky
        spawn_buffer_load(kernel, buffer)
        return kernel, engine

    def test_transient_failure_retried_with_backoff(self):
        kernel, engine = self.build_flaky(failing_attempts=1)
        supervisor = CheckpointSupervisor(engine)
        kernel.spawn(supervisor_process(supervisor, rounds=4), "supervisor")
        kernel.run(until=20)
        kernel.raise_failures()
        assert supervisor.checkpoints_completed == 4
        assert supervisor.checkpoints_abandoned == 0
        assert supervisor.retries_performed == 1
        kinds = [event.kind for event in supervisor.events]
        assert "failure" in kinds and "retry" in kinds

    def test_round_abandoned_after_exhausting_retries(self):
        # retries=2 -> 3 attempts per round; 3 consecutive failures burn
        # exactly one round, the next round completes.
        kernel, engine = self.build_flaky(failing_attempts=3)
        supervisor = CheckpointSupervisor(engine)
        kernel.spawn(supervisor_process(supervisor, rounds=3), "supervisor")
        kernel.run(until=20)
        kernel.raise_failures()
        assert supervisor.checkpoints_abandoned == 1
        assert supervisor.checkpoints_completed == 2
        assert any(event.kind == "gave-up" for event in supervisor.events)

    def test_attempt_never_raises(self):
        kernel, engine = self.build_flaky(failing_attempts=1)
        supervisor = CheckpointSupervisor(engine)
        completed, reports = supervisor.attempt()
        assert (completed, reports) == (False, [])
        completed, reports = supervisor.attempt()
        assert completed is True


class TestStallWatchdog:
    def test_stall_flagged_once_per_episode_and_rearmed(self):
        kernel = make_kernel()
        buffer = BoundedBuffer(kernel, capacity=3, history=HistoryDatabase())
        config = DetectorConfig(interval=0.5, stall_timeout=2.0)
        engine = DetectionEngine(kernel, config)
        engine.register(buffer)
        supervisor = CheckpointSupervisor(engine)

        def idle():
            yield Delay(10.0)

        kernel.spawn(idle(), "idle")
        kernel.run(until=0.1)
        assert supervisor.check_stall() is False
        kernel.run(until=5.0)
        # Past the timeout with no completed checkpoint: flagged once.
        assert supervisor.check_stall() is True
        assert supervisor.check_stall() is True
        assert supervisor.stalls_detected == 1
        assert supervisor.stalled
        # A completed checkpoint re-arms the watchdog.
        completed, __ = supervisor.attempt()
        assert completed
        assert not supervisor.stalled
        assert supervisor.check_stall() is False

    def test_disabled_without_timeout(self):
        kernel = make_kernel()
        buffer = BoundedBuffer(kernel, capacity=3, history=HistoryDatabase())
        engine = DetectionEngine(kernel, DetectorConfig(interval=0.5))
        engine.register(buffer)
        supervisor = CheckpointSupervisor(engine)
        assert supervisor.stall_timeout is None
        assert supervisor.check_stall() is False


class TestDegradedMode:
    def build(self, capacity=4):
        kernel = make_kernel()
        buffer = BoundedBuffer(
            kernel, capacity=3, history=BoundedHistory(capacity=capacity)
        )
        config = DetectorConfig(interval=2.0, tmax=60.0, tio=60.0, tlimit=60.0)
        engine = DetectionEngine(kernel, config)
        entry = engine.register(buffer)
        spawn_buffer_load(kernel, buffer, items=12, pace=0.05)
        return kernel, engine, entry

    def test_lossy_window_yields_no_confirmed_reports(self):
        kernel, engine, entry = self.build()
        kernel.run(until=2.0)
        reports = engine.checkpoint()
        assert entry.dropped_in_windows > 0
        assert entry.degraded_windows >= 1
        assert all(r.confidence is Confidence.DEGRADED for r in reports)
        assert all(is_drop_tolerant(r.rule) for r in engine.reports)
        assert engine.confirmed_clean

    def test_complete_window_stays_confirmed(self):
        kernel, engine, entry = self.build(capacity=4096)
        kernel.run(until=2.0)
        engine.checkpoint()
        assert entry.degraded_windows == 0
        assert all(
            r.confidence is Confidence.CONFIRMED for r in engine.reports
        )

    def test_later_complete_windows_confirmed_again(self):
        # After a lossy window, Algorithm-2 re-bases its cumulative
        # counters: the quiet tail of the run must not report ST-7a.
        kernel, engine, entry = self.build()
        kernel.run(until=2.0)
        engine.checkpoint()
        assert entry.degraded_windows >= 1
        assert entry.algorithm2 is not None
        assert entry.algorithm2.resyncs >= 1
        kernel.run(until=10.0)  # workload drains; windows shrink
        engine.checkpoint()
        engine.checkpoint()
        assert engine.confirmed_clean

    def test_drop_tolerant_set_is_the_timer_and_snapshot_rules(self):
        assert DROP_TOLERANT == frozenset(
            {
                STRule.TMAX_EXCEEDED,
                STRule.TIO_EXCEEDED,
                STRule.REQUEST_NOT_RELEASED,
                STRule.WAIT_FOR_CYCLE,
            }
        )

    def test_degraded_tmax_still_reported(self):
        # A process wedged inside the monitor is witnessed by the timer
        # sweep even on a lossy window — downgraded, not dropped.
        kernel = make_kernel()
        buffer = BoundedBuffer(
            kernel, capacity=3, history=BoundedHistory(capacity=2)
        )
        config = DetectorConfig(interval=1.0, tmax=0.5, tio=60.0, tlimit=60.0)
        engine = DetectionEngine(kernel, config)
        entry = engine.register(buffer)

        def wedged():
            yield from buffer.monitor.enter("Send")
            yield Delay(30.0)  # never exits

        def knocker(index):
            # Each produces an Enter event against the held monitor, so
            # the capacity-2 window drops events and goes degraded.
            yield Delay(0.2 * (index + 1))
            yield from buffer.monitor.enter("Receive")

        kernel.spawn(wedged(), "wedged")
        for index in range(6):
            kernel.spawn(knocker(index), f"knocker-{index}")
        kernel.run(until=2.0)
        reports = engine.checkpoint()
        assert entry.degraded_windows == 1
        tmax_reports = [
            r for r in reports if r.rule is STRule.TMAX_EXCEEDED
        ]
        assert tmax_reports
        assert all(r.confidence is Confidence.DEGRADED for r in tmax_reports)
        assert all(r.degraded for r in tmax_reports)
        assert "(degraded)" in tmax_reports[0].render()


class TestSnapshotRestore:
    def build(self):
        kernel = make_kernel()
        buffer = BoundedBuffer(
            kernel, capacity=3, history=BoundedHistory(capacity=64)
        )
        config = DetectorConfig(interval=0.5, tmax=60.0, tio=60.0, tlimit=60.0)
        engine = DetectionEngine(kernel, config)
        entry = engine.register(buffer)
        return kernel, buffer, engine, entry

    def test_roundtrip_resumes_windows(self):
        import json

        kernel, buffer, engine, entry = self.build()
        spawn_buffer_load(kernel, buffer, items=6, pace=0.1)
        supervisor = CheckpointSupervisor(engine)
        kernel.spawn(supervisor_process(supervisor, rounds=2), "supervisor")
        kernel.run(until=1.2)
        entry.breaker.record_failure(kernel.now(), "simulated")
        snapshot = json.loads(json.dumps(supervisor.snapshot_state()))

        # A "restarted" supervisor on a fresh engine over the same sinks.
        engine2 = DetectionEngine(kernel, engine.config)
        entry2 = engine2.register(buffer)
        supervisor2 = CheckpointSupervisor(engine2)
        restored = supervisor2.restore_state(snapshot)
        assert restored == [entry2.label]
        assert supervisor2.checkpoints_completed == 2
        assert entry2.checkpoints_run == entry.checkpoints_run
        assert (
            entry2.breaker.consecutive_failures
            == entry.breaker.consecutive_failures
        )
        # The restored engine keeps checking from the snapshot base.
        kernel.run(until=3.0)
        engine2.checkpoint()
        assert engine2.confirmed_clean

    def test_rejects_foreign_snapshot(self):
        __, ___, engine, ____ = self.build()
        supervisor = CheckpointSupervisor(engine)
        with pytest.raises(ValueError):
            supervisor.restore_state({"kind": "sink"})

    def test_rejects_mismatched_monitor_fleet(self):
        from repro.errors import RecoveryError

        kernel, buffer, engine, entry = self.build()
        supervisor = CheckpointSupervisor(engine)
        engine.checkpoint()
        snapshot = supervisor.snapshot_state()

        # Restarted engine registers a *different* fleet: restoring the
        # snapshot silently onto the wrong monitors must be refused.
        engine2 = DetectionEngine(kernel, engine.config)
        engine2.register(buffer, label="renamed")
        supervisor2 = CheckpointSupervisor(engine2)
        with pytest.raises(RecoveryError) as excinfo:
            supervisor2.restore_state(snapshot)
        message = str(excinfo.value)
        assert entry.label in message and "renamed" in message

    def test_rejects_partial_fleet(self):
        from repro.errors import RecoveryError

        kernel, buffer, engine, ____ = self.build()
        supervisor = CheckpointSupervisor(engine)
        engine.checkpoint()
        snapshot = supervisor.snapshot_state()

        engine2 = DetectionEngine(kernel, engine.config)
        supervisor2 = CheckpointSupervisor(engine2)  # nothing registered
        with pytest.raises(RecoveryError):
            supervisor2.restore_state(snapshot)


class TestSupervisionConfig:
    def test_defaults_off(self):
        config = DetectorConfig()
        assert config.checkpoint_budget is None
        assert config.stall_timeout is None
        assert config.monitor_check_budget is None
        assert config.checkpoint_retries == 2
        assert config.breaker_failure_threshold == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"checkpoint_budget": 0.0},
            {"checkpoint_budget": -1.0},
            {"checkpoint_retries": -1},
            {"retry_backoff": 0.0},
            {"stall_timeout": -2.0},
            {"monitor_check_budget": 0.0},
            {"breaker_failure_threshold": 0},
            {"breaker_cooldown": 0.0},
            {"retry_jitter": -0.1},
            {"retry_jitter": 1.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            DetectorConfig(**kwargs)


class TestRetryJitter:
    """Seeded jitter on retry backoff: no lockstep fleets, sim-determinism."""

    def build_supervisor(self, **config_kwargs):
        import random

        kernel = make_kernel()
        engine = DetectionEngine(kernel, DetectorConfig(**config_kwargs))
        return CheckpointSupervisor(engine, rng=random.Random(42))

    def test_zero_jitter_is_exact_exponential_backoff(self):
        supervisor = self.build_supervisor(retry_backoff=0.25)
        assert supervisor.jitter == 0.0
        assert [supervisor.retry_delay(a) for a in range(4)] == [
            0.25, 0.5, 1.0, 2.0
        ]

    def test_jitter_stays_within_the_configured_band(self):
        supervisor = self.build_supervisor(
            retry_backoff=0.25, retry_jitter=0.5
        )
        for attempt in range(6):
            base = 0.25 * 2**attempt
            delay = supervisor.retry_delay(attempt)
            assert base <= delay <= base * 1.5

    def test_seeded_rng_makes_jitter_deterministic(self):
        first = self.build_supervisor(retry_backoff=0.25, retry_jitter=0.5)
        second = self.build_supervisor(retry_backoff=0.25, retry_jitter=0.5)
        schedule = [first.retry_delay(a) for a in range(8)]
        assert schedule == [second.retry_delay(a) for a in range(8)]
        # And it is actually jittered, not a constant multiplier.
        ratios = {round(d / (0.25 * 2**a), 9) for a, d in enumerate(schedule)}
        assert len(ratios) > 1

    def test_jitter_override_beats_config(self):
        import random

        kernel = make_kernel()
        engine = DetectionEngine(
            kernel, DetectorConfig(retry_jitter=0.5)
        )
        supervisor = CheckpointSupervisor(
            engine, jitter=0.0, rng=random.Random(0)
        )
        assert supervisor.retry_delay(1) == engine.config.retry_backoff * 2

    def test_presets_enable_jitter(self):
        assert DetectorConfig.preset("bounded").retry_jitter == 0.25
        assert DetectorConfig.preset("durable").retry_jitter == 0.25
        assert DetectorConfig().retry_jitter == 0.0

    def test_distinct_rngs_decorrelate_two_supervisors(self):
        import random

        kernel = make_kernel()
        config = DetectorConfig(retry_jitter=0.5)
        one = CheckpointSupervisor(
            DetectionEngine(kernel, config), rng=random.Random(1)
        )
        two = CheckpointSupervisor(
            DetectionEngine(kernel, config), rng=random.Random(2)
        )
        schedules = (
            [one.retry_delay(a) for a in range(6)],
            [two.retry_delay(a) for a in range(6)],
        )
        assert schedules[0] != schedules[1]
