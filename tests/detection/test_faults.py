"""Unit tests for the fault taxonomy and rule identifiers."""

from repro.detection.faults import FaultClass, FaultLevel
from repro.detection.rules import SUSPECTS, FDRule, STRule


class TestTaxonomy:
    def test_exactly_21_faults(self):
        assert len(FaultClass) == 21

    def test_level_partition(self):
        impl = FaultClass.at_level(FaultLevel.IMPLEMENTATION)
        proc = FaultClass.at_level(FaultLevel.PROCEDURE)
        user = FaultClass.at_level(FaultLevel.USER_PROCESS)
        assert len(impl) == 14
        assert len(proc) == 4
        assert len(user) == 3
        assert len(impl) + len(proc) + len(user) == 21

    def test_labels_match_paper_outline(self):
        assert FaultClass.ENTER_MUTEX_VIOLATED.label == "I.a.1"
        assert FaultClass.SEND_DELAY_INTEGRITY.label == "II.a"
        assert FaultClass.REQUEST_WHILE_HOLDING.label == "III.c"

    def test_labels_unique(self):
        labels = FaultClass.all_labels()
        assert len(labels) == len(set(labels))

    def test_only_user_level_is_realtime(self):
        assert FaultLevel.USER_PROCESS.realtime
        assert not FaultLevel.IMPLEMENTATION.realtime
        assert not FaultLevel.PROCEDURE.realtime


class TestRuleIds:
    def test_fd_rule_ids(self):
        assert FDRule.MUTUAL_EXCLUSION_ENTER.value == "FD-1a"
        assert FDRule.RELEASE_AFTER_ACQUIRE.value == "FD-7b"
        assert len({rule.value for rule in FDRule}) == len(FDRule)

    def test_st_rule_ids(self):
        assert STRule.ENTRY_QUEUE_MATCHES.value == "ST-1"
        assert STRule.REQUEST_NOT_RELEASED.value == "ST-8c"
        assert len({rule.value for rule in STRule}) == len(STRule)


class TestSuspects:
    def test_every_st_rule_has_suspects(self):
        for rule in STRule:
            assert rule in SUSPECTS, f"{rule} missing from SUSPECTS"
            assert SUSPECTS[rule], f"{rule} has empty suspect list"

    def test_every_fd_rule_has_suspects(self):
        for rule in FDRule:
            assert rule in SUSPECTS, f"{rule} missing from SUSPECTS"

    def test_every_fault_is_suspected_by_some_st_rule(self):
        """Detectability: each taxonomy entry must be reachable through at
        least one ST-rule's suspect list (the paper's claim that every
        fault violates at least one rule)."""
        covered = set()
        for rule in STRule:
            covered.update(SUSPECTS[rule])
        assert covered == set(FaultClass)
