"""Two-phase checkpoint semantics: capture/evaluate split, report-order
determinism vs the single-phase baseline, breaker behaviour on phase-2
throws, degraded windows cut in phase 1 but evaluated later, and the
adaptive per-monitor capture schedule on both kernels."""

import pytest

from repro.apps import BoundedBuffer, SharedAccount, SingleResourceAllocator
from repro.detection import (
    Confidence,
    DetectionEngine,
    DetectorConfig,
    FaultStatistics,
    engine_process,
)
from repro.detection.supervision import BreakerState, CheckpointSupervisor
from repro.history import BoundedHistory, HistoryDatabase
from repro.injection import sabotage_entry
from repro.kernel import Delay, RandomPolicy, SimKernel, ThreadKernel

FAST = 0.002  # ThreadKernel virtual-seconds -> wall-seconds compression


def make_kernel(seed=0):
    return SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")


def build_monitors(kernel):
    return (
        BoundedBuffer(kernel, capacity=2, history=HistoryDatabase()),
        SingleResourceAllocator(kernel, history=HistoryDatabase()),
        SharedAccount(kernel, 100, history=HistoryDatabase()),
    )


def spawn_mixed_workload(kernel, monitors, *, buggy_release=False):
    buffer, allocator, account = monitors

    def producer():
        for item in range(8):
            yield Delay(0.05)
            yield from buffer.send(item)

    def consumer():
        for __ in range(8):
            yield Delay(0.06)
            yield from buffer.receive()

    def alloc_user(i):
        for __ in range(4):
            yield Delay(0.07 * (i + 1))
            yield from allocator.request()
            yield Delay(0.05)
            yield from allocator.release()

    def banker():
        for __ in range(6):
            yield Delay(0.08)
            yield from account.deposit(5)

    kernel.spawn(producer())
    kernel.spawn(consumer())
    for i in range(2):
        kernel.spawn(alloc_user(i))
    kernel.spawn(banker())
    if buggy_release:
        def rude():
            yield Delay(0.5)
            yield from allocator.release()

        kernel.spawn(rude())


def ordered_report_tuples(reports):
    return [
        (r.rule_id, r.monitor, tuple(r.pids), r.confidence, r.detected_at)
        for r in reports
    ]


CONFIG = DetectorConfig(interval=0.4, tmax=60.0, tio=60.0, tlimit=60.0)


class TestReportOrderDeterminism:
    def run_two_phase(self, seed):
        kernel = make_kernel(seed)
        engine = DetectionEngine(kernel, CONFIG)
        monitors = build_monitors(kernel)
        for monitor in monitors:
            engine.register(monitor)
        spawn_mixed_workload(kernel, monitors, buggy_release=True)
        kernel.spawn(engine_process(engine, rounds=8), "engine")
        kernel.run()
        kernel.raise_failures()
        return engine

    def run_single_phase(self, seed):
        """The pre-split baseline: capture+evaluate per entry, immediately,
        all within the checkpoint round."""
        kernel = make_kernel(seed)
        engine = DetectionEngine(kernel, CONFIG)
        monitors = build_monitors(kernel)
        for monitor in monitors:
            engine.register(monitor)
        spawn_mixed_workload(kernel, monitors, buggy_release=True)

        def baseline():
            for __ in range(8):
                yield Delay(engine.config.interval)
                def locked():
                    for entry in engine.entries:
                        entry.reports.extend(entry.check())
                kernel.atomic(locked)

        kernel.spawn(baseline(), "single-phase")
        kernel.run()
        kernel.raise_failures()
        return engine

    def test_identical_ordered_reports_vs_single_phase(self):
        two = self.run_two_phase(seed=3)
        one = self.run_single_phase(seed=3)
        assert len(two.reports) > 0
        assert ordered_report_tuples(two.reports) == ordered_report_tuples(
            one.reports
        )

    def test_two_phase_run_is_self_deterministic(self):
        first = self.run_two_phase(seed=7)
        second = self.run_two_phase(seed=7)
        assert ordered_report_tuples(first.reports) == ordered_report_tuples(
            second.reports
        )

    def test_split_counters_line_up(self):
        engine = self.run_two_phase(seed=3)
        assert engine.atomic_sections == engine.checkpoints_run == 8
        # Adaptive off: every registered monitor captured and evaluated
        # at every interval.
        assert engine.captures_taken == 8 * 3
        assert engine.evaluations_run == 8 * 3
        assert engine.intervals_skipped == 0
        assert engine.pending_captures == 0
        assert engine.worldstop_seconds > 0
        assert engine.evaluate_seconds > 0
        assert engine.checking_seconds == pytest.approx(
            engine.worldstop_seconds + engine.evaluate_seconds
        )


class TestPhaseTwoFailures:
    def build(self, *, threshold=2):
        kernel = make_kernel()
        engine = DetectionEngine(
            kernel,
            DetectorConfig(
                interval=0.5,
                breaker_failure_threshold=threshold,
                breaker_cooldown=2.0,
            ),
        )
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        entry = engine.register(allocator)
        return kernel, engine, entry

    def test_phase_two_throw_opens_breaker(self):
        kernel, engine, entry = self.build(threshold=2)
        sabotage_entry(entry, failures=2)
        engine.checkpoint()
        assert entry.breaker.state is BreakerState.CLOSED
        engine.checkpoint()
        assert entry.breaker.state is BreakerState.OPEN
        assert entry.quarantined
        # The captures happened (phase 1 succeeded); only evaluation died.
        assert engine.captures_taken == 2
        assert engine.evaluations_run == 0
        assert engine.check_failures == 2

    def test_quarantined_monitor_skips_capture_entirely(self):
        kernel, engine, entry = self.build(threshold=1)
        sabotage_entry(entry, failures=1)
        engine.checkpoint()
        assert entry.quarantined
        engine.checkpoint()  # still within cooldown at t=0
        assert entry.checkpoints_skipped == 1
        assert engine.captures_taken == 1  # no phase-1 work for quarantined

    def test_quarantine_lifecycle_still_closes(self):
        # The full lifecycle (OPEN -> HALF_OPEN probe -> CLOSED) must
        # survive evaluation moving off the atomic section.
        kernel, engine, entry = self.build(threshold=2)
        sabotage_entry(entry, failures=2)
        kernel.spawn(engine_process(engine, rounds=16), "engine")
        kernel.run(until=10)
        kernel.raise_failures()
        assert entry.breaker.times_opened >= 1
        assert entry.breaker.times_reclosed >= 1
        assert entry.breaker.state is BreakerState.CLOSED


class TestDegradedCaptureEvaluatedLater:
    def test_lossy_window_frozen_in_phase_one(self):
        kernel = make_kernel()
        engine = DetectionEngine(
            kernel, DetectorConfig(interval=1.0, tmax=None, tio=None)
        )
        allocator = SingleResourceAllocator(
            kernel, history=BoundedHistory(capacity=4)
        )
        entry = engine.register(allocator)

        def churn(cycles):
            def body():
                for __ in range(cycles):
                    yield Delay(0.02)
                    yield from allocator.request()
                    yield Delay(0.02)
                    yield from allocator.release()
            return body

        kernel.spawn(churn(6)(), "burst")
        kernel.run()
        kernel.raise_failures()
        assert entry.history.pending_dropped > 0

        # Phase 1 cuts the lossy window; nothing is evaluated yet.
        assert engine.capture_phase() == 1
        assert engine.pending_captures == 1
        assert entry.degraded_windows == 0
        frozen_live = entry.history.live_events
        assert frozen_live == 0  # the cut emptied the open window

        # The workload moves on before evaluation runs: these events
        # belong to the *next* window and must not leak into the capture.
        kernel.spawn(churn(2)(), "after-capture")
        kernel.run()
        kernel.raise_failures()
        assert entry.history.live_events > 0

        engine.evaluate_phase()
        assert engine.pending_captures == 0
        assert entry.degraded_windows == 1
        assert entry.dropped_in_windows > 0
        # Whatever survived is advisory only — never CONFIRMED.
        assert all(
            report.confidence is Confidence.DEGRADED
            for report in entry.reports
        )
        # The post-capture events are still queued for the next window.
        assert entry.history.live_events > 0


ADAPTIVE = DetectorConfig(
    interval=0.25,
    tmax=None,
    tio=None,
    tlimit=None,
    adaptive_intervals=True,
    max_interval=2.0,
    adaptive_target_events=4.0,
)


def spawn_busy_buffer(kernel, buffer, ops=120, delay=0.02):
    def producer():
        for item in range(ops):
            yield Delay(delay)
            yield from buffer.send(item)

    def consumer():
        for __ in range(ops):
            yield Delay(delay)
            yield from buffer.receive()

    kernel.spawn(producer())
    kernel.spawn(consumer())


class TestAdaptiveIntervalsSim:
    def test_idle_monitor_skipped_busy_monitor_checked(self):
        kernel = make_kernel()
        engine = DetectionEngine(kernel, ADAPTIVE)
        buffer = BoundedBuffer(kernel, capacity=3, history=HistoryDatabase())
        idle = SingleResourceAllocator(
            kernel, history=HistoryDatabase(), name="idle"
        )
        busy_entry = engine.register(buffer)
        idle_entry = engine.register(idle)
        # Outlast the 16 rounds (4.0 virtual s) so the buffer stays busy.
        spawn_busy_buffer(kernel, buffer, ops=250)
        kernel.spawn(engine_process(engine, rounds=16), "engine")
        kernel.run()
        kernel.raise_failures()
        # The busy buffer stays on the min interval: captured every round.
        assert busy_entry.checkpoints_run == 16
        # The idle allocator backs off to max_interval (2.0 = 8 rounds):
        # captured on the first round, then only on wakes.
        assert idle_entry.intervals_skipped > 0
        assert idle_entry.checkpoints_run < 16
        # ...but it does wake: the timer sweeps still run periodically.
        assert idle_entry.checkpoints_run >= 2
        assert engine.intervals_skipped == idle_entry.intervals_skipped
        assert engine.clean

    def test_adaptive_off_never_skips(self):
        kernel = make_kernel()
        engine = DetectionEngine(
            kernel, DetectorConfig(interval=0.25, tmax=None, tio=None)
        )
        idle = SingleResourceAllocator(kernel, history=HistoryDatabase())
        entry = engine.register(idle)
        kernel.spawn(engine_process(engine, rounds=8), "engine")
        kernel.run()
        kernel.raise_failures()
        assert entry.checkpoints_run == 8
        assert entry.intervals_skipped == 0

    def test_skip_is_drop_safe_with_bounded_history(self):
        # An idle first window schedules next_due at max_interval; the
        # burst that follows would overflow the bounded sink long before
        # that — the engine must capture early instead of losing events.
        kernel = make_kernel()
        engine = DetectionEngine(
            kernel,
            DetectorConfig(
                interval=0.25,
                tmax=None,
                tio=None,
                tlimit=None,
                adaptive_intervals=True,
                max_interval=30.0,
            ),
        )
        allocator = SingleResourceAllocator(
            kernel, history=BoundedHistory(capacity=6)
        )
        entry = engine.register(allocator)

        def late_burst():
            yield Delay(0.3)  # past the first checkpoint: window is idle
            for __ in range(10):
                yield Delay(0.01)
                yield from allocator.request()
                yield Delay(0.01)
                yield from allocator.release()

        kernel.spawn(late_burst(), "late-burst")
        kernel.spawn(engine_process(engine, rounds=12), "engine")
        kernel.run()
        kernel.raise_failures()
        assert entry.forced_captures >= 1
        # Not every event could be saved (the burst outruns one interval),
        # but every drop was accounted to a cut-and-checked window — the
        # schedule never silently lost one.
        assert entry.checkpoints_run >= 3
        assert entry.dropped_in_windows == entry.history.dropped_events

    def test_snapshot_restore_roundtrips_adaptive_state(self):
        import json

        kernel = make_kernel()
        engine = DetectionEngine(kernel, ADAPTIVE)
        buffer = BoundedBuffer(kernel, capacity=3, history=HistoryDatabase())
        entry = engine.register(buffer)
        spawn_busy_buffer(kernel, buffer, ops=40)
        kernel.spawn(engine_process(engine, rounds=6), "engine")
        kernel.run()
        kernel.raise_failures()
        assert entry.event_rate > 0
        assert entry.next_due is not None
        supervisor = CheckpointSupervisor(engine)
        state = json.loads(json.dumps(supervisor.snapshot_state()))

        kernel2 = make_kernel()
        engine2 = DetectionEngine(kernel2, ADAPTIVE)
        buffer2 = BoundedBuffer(kernel2, capacity=3, history=HistoryDatabase())
        entry2 = engine2.register(buffer2)
        restored = CheckpointSupervisor(engine2).restore_state(state)
        assert restored == [entry.label]
        assert entry2.event_rate == entry.event_rate
        assert entry2.next_due == entry.next_due
        assert entry2.intervals_skipped == entry.intervals_skipped


class TestAdaptiveIntervalsThreads:
    def test_idle_skip_and_wake_on_thread_kernel(self):
        # Interleavings are nondeterministic on real threads, so only
        # schedule-independent properties are asserted.
        kernel = ThreadKernel(time_scale=FAST)
        engine = DetectionEngine(
            kernel,
            DetectorConfig(
                interval=0.25,
                tmax=None,
                tio=None,
                tlimit=None,
                adaptive_intervals=True,
                max_interval=2.0,
                adaptive_target_events=4.0,
            ),
        )
        buffer = BoundedBuffer(
            kernel, capacity=3, history=HistoryDatabase(), service_time=0.005
        )
        idle = SingleResourceAllocator(
            kernel, history=HistoryDatabase(), name="idle"
        )
        busy_entry = engine.register(buffer)
        idle_entry = engine.register(idle)
        spawn_busy_buffer(kernel, buffer, ops=60, delay=0.05)
        kernel.spawn(engine_process(engine, rounds=14), "engine")
        kernel.run()
        kernel.raise_failures()
        assert engine.checkpoints_run == 14
        assert busy_entry.checkpoints_run > idle_entry.checkpoints_run
        assert idle_entry.intervals_skipped > 0
        assert idle_entry.checkpoints_run >= 1
        assert engine.clean


class TestCountersSurfaced:
    def test_repr_shows_split_counters(self):
        kernel = make_kernel()
        engine = DetectionEngine(kernel, CONFIG)
        engine.register(SingleResourceAllocator(kernel, history=HistoryDatabase()))
        engine.checkpoint()
        text = repr(engine)
        for fragment in (
            "atomic_sections=1",
            "captures_taken=1",
            "evaluations_run=1",
            "intervals_skipped=0",
        ):
            assert fragment in text

    def test_statistics_from_engine_carries_pipeline_counters(self):
        kernel = make_kernel()
        engine = DetectionEngine(kernel, CONFIG)
        monitors = build_monitors(kernel)
        for monitor in monitors:
            engine.register(monitor)
        spawn_mixed_workload(kernel, monitors, buggy_release=True)
        kernel.spawn(engine_process(engine, rounds=4), "engine")
        kernel.run()
        kernel.raise_failures()
        stats = FaultStatistics.from_engine(engine)
        assert stats.total_reports == len(engine.reports)
        counters = stats.counters
        assert counters["atomic_sections"] == 4
        assert counters["captures_taken"] == 12
        assert counters["evaluations_run"] == 12
        assert counters["worldstop_seconds"] > 0
        assert "atomic sections" in stats.render()
