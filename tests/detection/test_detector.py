"""Integration tests for the FaultDetector on live workloads."""

import pytest

from repro.apps import BoundedBuffer, SharedAccount, SingleResourceAllocator
from repro.detection import (
    DetectorConfig,
    FaultClass,
    FaultDetector,
    STRule,
    detector_process,
)
from repro.history import HistoryDatabase
from repro.kernel import Delay, RandomPolicy, SimKernel
from tests.conftest import consumer, producer


def run_buffer_workload(kernel, buffer, *, items=20, n=2):
    for __ in range(n):
        kernel.spawn(producer(buffer, items))
    for __ in range(n):
        kernel.spawn(consumer(buffer, items))


class TestCleanWorkloads:
    def test_buffer_clean(self, kernel):
        buffer = BoundedBuffer(
            kernel, capacity=3, history=HistoryDatabase(), service_time=0.02
        )
        detector = FaultDetector(
            buffer, DetectorConfig(interval=0.5, tmax=10.0, tio=10.0)
        )
        run_buffer_workload(kernel, buffer)
        kernel.spawn(detector_process(detector), "detector")
        kernel.run(until=30)
        kernel.raise_failures()
        assert detector.clean
        assert detector.checkpoints_run > 10

    def test_allocator_clean_with_realtime_orders(self, kernel):
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        detector = FaultDetector(
            allocator, DetectorConfig(interval=0.5, tlimit=10.0)
        )

        def user(i):
            for __ in range(5):
                yield Delay(0.05 * (i + 1))
                yield from allocator.request()
                yield Delay(0.1)
                yield from allocator.release()

        for i in range(4):
            kernel.spawn(user(i))
        kernel.spawn(detector_process(detector), "detector")
        kernel.run(until=30)
        kernel.raise_failures()
        assert detector.clean

    def test_account_clean(self, kernel):
        account = SharedAccount(kernel, 100, history=HistoryDatabase())
        detector = FaultDetector(
            account, DetectorConfig(interval=0.5, tmax=20.0, tio=20.0)
        )

        def depositor():
            for __ in range(10):
                yield Delay(0.1)
                yield from account.deposit(5)

        def withdrawer():
            for __ in range(10):
                yield Delay(0.12)
                yield from account.withdraw(5)

        kernel.spawn(depositor())
        kernel.spawn(withdrawer())
        kernel.spawn(detector_process(detector), "detector")
        kernel.run(until=30)
        kernel.raise_failures()
        assert detector.clean


class TestConfiguration:
    def test_auto_attaches_history(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2)
        assert buffer.history is None
        detector = FaultDetector(buffer)
        assert buffer.history is not None
        assert detector.monitor.history is buffer.history

    def test_accepts_raw_monitor_or_base(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        via_base = FaultDetector(buffer)
        assert via_base.monitor is buffer.monitor

    def test_algorithm_selection_by_type(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        buffer_det = FaultDetector(buffer)
        assert buffer_det.algorithm3 is None  # coordinators skip Algorithm-3

        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        alloc_det = FaultDetector(allocator)
        assert alloc_det.algorithm3 is not None

        account = SharedAccount(kernel, history=HistoryDatabase())
        acct_det = FaultDetector(account)
        assert acct_det.algorithm3 is None

    def test_detector_process_rounds(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        detector = FaultDetector(buffer, DetectorConfig(interval=1.0))
        kernel.spawn(detector_process(detector, rounds=3))
        kernel.run()
        assert detector.checkpoints_run == 3

    def test_stop_ends_detector_process(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        detector = FaultDetector(buffer, DetectorConfig(interval=1.0))

        def stopper():
            yield Delay(2.5)
            detector.stop()

        kernel.spawn(detector_process(detector))
        kernel.spawn(stopper())
        result = kernel.run(until=100)
        assert result.quiesced
        assert detector.checkpoints_run == 2

    def test_manual_checkpoint(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        detector = FaultDetector(buffer)
        run_buffer_workload(kernel, buffer, items=5, n=1)
        kernel.run(until=30)
        kernel.raise_failures()
        reports = detector.checkpoint()
        assert reports == []
        assert detector.checkpoints_run == 1


class TestRealtimeOrderChecking:
    def test_level3_fault_reported_before_checkpoint(self, kernel):
        """Real-time mandate: the report must exist as soon as the event is
        recorded, without any checkpoint having run."""
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        detector = FaultDetector(allocator, DetectorConfig(interval=1000.0))

        def buggy():
            yield from allocator.release()  # release before request

        kernel.spawn(buggy())
        kernel.run(until=1.0)
        kernel.raise_failures()
        assert detector.checkpoints_run == 0
        assert any(
            report.rule is STRule.RELEASE_REQUIRES_REQUEST
            for report in detector.reports
        )
        assert any(
            report.implicates(FaultClass.RELEASE_BEFORE_REQUEST)
            for report in detector.reports
        )

    def test_periodic_mode_defers_order_checks(self, kernel):
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        detector = FaultDetector(
            allocator,
            DetectorConfig(interval=5.0, realtime_orders=False),
        )

        def buggy():
            yield from allocator.release()

        kernel.spawn(buggy())
        kernel.run(until=1.0)
        kernel.raise_failures()
        assert detector.reports == []  # not yet checked
        detector.checkpoint()
        assert any(
            report.rule is STRule.RELEASE_REQUIRES_REQUEST
            for report in detector.reports
        )


class TestReporting:
    def test_reports_for_rule_and_implicated_faults(self, kernel):
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        detector = FaultDetector(allocator)

        def buggy():
            yield from allocator.release()

        kernel.spawn(buggy())
        kernel.run(until=1.0)
        kernel.raise_failures()
        by_rule = detector.reports_for_rule(STRule.RELEASE_REQUIRES_REQUEST)
        assert len(by_rule) == 1
        assert FaultClass.RELEASE_BEFORE_REQUEST in detector.implicated_faults()
        assert not detector.clean

    def test_report_render(self, kernel):
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        detector = FaultDetector(allocator)

        def buggy():
            yield from allocator.release()

        kernel.spawn(buggy())
        kernel.run(until=1.0)
        text = detector.reports[0].render()
        assert "ST-8b" in text
        assert "allocator" in text
