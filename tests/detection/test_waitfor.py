"""Tests for cross-monitor wait-for-graph deadlock detection."""

import pytest

from repro.apps import SingleResourceAllocator
from repro.apps.dining_philosophers import greedy_philosopher
from repro.detection import DeadlockDetector, FaultClass, FaultDetector, STRule
from repro.history import HistoryDatabase
from repro.kernel import Delay, SimKernel


def allocator_with_detector(kernel, name):
    allocator = SingleResourceAllocator(
        kernel, history=HistoryDatabase(), name=name
    )
    detector = FaultDetector(allocator)
    return allocator, detector


class TestConstruction:
    def test_requires_order_checkers(self, kernel):
        from repro.apps import BoundedBuffer

        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        detector = FaultDetector(buffer)  # coordinator: no Algorithm-3
        with pytest.raises(ValueError):
            DeadlockDetector([detector])


class TestCleanRuns:
    def test_no_cycle_on_healthy_workload(self, kernel):
        alloc, det = allocator_with_detector(kernel, "res")

        def user(i):
            for __ in range(3):
                yield Delay(0.05 * (i + 1))
                yield from alloc.request()
                yield Delay(0.1)
                yield from alloc.release()

        for i in range(3):
            kernel.spawn(user(i))
        deadlocks = DeadlockDetector([det])
        kernel.run(until=5)
        kernel.raise_failures()
        assert deadlocks.check() == []
        assert deadlocks.clean

    def test_single_waiter_is_not_a_cycle(self, fifo_kernel):
        alloc, det = allocator_with_detector(fifo_kernel, "res")

        def holder():
            yield from alloc.request()
            yield Delay(5.0)
            yield from alloc.release()

        def waiter():
            yield Delay(0.5)
            yield from alloc.request()
            yield from alloc.release()

        fifo_kernel.spawn(holder())
        fifo_kernel.spawn(waiter())
        fifo_kernel.run(until=1.0)
        deadlocks = DeadlockDetector([det])
        edges = deadlocks.edges()
        assert len(edges) == 1  # waiter -> holder, no cycle
        assert deadlocks.check() == []


class TestCircularWait:
    def test_two_monitor_cycle(self, fifo_kernel):
        a, det_a = allocator_with_detector(fifo_kernel, "res-a")
        b, det_b = allocator_with_detector(fifo_kernel, "res-b")

        def crossing(first, second):
            yield from first.request()
            yield Delay(0.5)
            yield from second.request()
            yield from second.release()
            yield from first.release()

        fifo_kernel.spawn(crossing(a, b), "p1")
        fifo_kernel.spawn(crossing(b, a), "p2")
        result = fifo_kernel.run(until=2.0)
        assert result.deadlocked or result.live
        deadlocks = DeadlockDetector([det_a, det_b])
        reports = deadlocks.check()
        assert len(reports) == 1
        report = reports[0]
        assert report.rule is STRule.WAIT_FOR_CYCLE
        assert len(report.pids) == 2
        assert "res-a" in report.monitor and "res-b" in report.monitor
        assert report.implicates(FaultClass.RESOURCE_NOT_RELEASED)

    def test_greedy_philosophers_cycle_found_and_named(self):
        kernel = SimKernel(on_deadlock="stop")
        forks, detectors = [], []
        for index in range(5):
            fork, detector = allocator_with_detector(kernel, f"fork{index}")
            forks.append(fork)
            detectors.append(detector)
        for seat in range(5):
            kernel.spawn(
                greedy_philosopher(forks, seat, meals=2, think=0.1),
                f"greedy-{seat}",
            )
        result = kernel.run(until=10)
        assert result.deadlocked
        deadlocks = DeadlockDetector(detectors)
        reports = deadlocks.check()
        assert len(reports) == 1
        assert len(reports[0].pids) == 5  # the full 5-philosopher cycle

    def test_cycle_reported_once(self, fifo_kernel):
        a, det_a = allocator_with_detector(fifo_kernel, "res-a")
        b, det_b = allocator_with_detector(fifo_kernel, "res-b")

        def crossing(first, second):
            yield from first.request()
            yield Delay(0.5)
            yield from second.request()

        fifo_kernel.spawn(crossing(a, b))
        fifo_kernel.spawn(crossing(b, a))
        fifo_kernel.run(until=2.0)
        deadlocks = DeadlockDetector([det_a, det_b])
        assert len(deadlocks.check()) == 1
        assert deadlocks.check() == []  # idempotent on the same cycle
        assert len(deadlocks.reports) == 1


class TestDeadlockProcess:
    def test_periodic_check_finds_live_cycle(self):
        from repro.detection.waitfor import deadlock_process

        kernel = SimKernel(on_deadlock="stop")
        a, det_a = allocator_with_detector(kernel, "res-a")
        b, det_b = allocator_with_detector(kernel, "res-b")
        deadlocks = DeadlockDetector([det_a, det_b])

        def crossing(first, second):
            yield from first.request()
            yield Delay(0.5)
            yield from second.request()

        kernel.spawn(crossing(a, b))
        kernel.spawn(crossing(b, a))
        kernel.spawn(deadlock_process(deadlocks, interval=0.5), "wf")
        kernel.run(until=3.0)
        assert len(deadlocks.reports) == 1
        assert deadlocks.reports[0].detected_at <= 1.5  # within ~1 period
