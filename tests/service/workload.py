"""Shared workload plumbing for the service test suite."""

from repro.apps.bounded_buffer import BoundedBuffer
from repro.apps.resource_allocator import SingleResourceAllocator
from repro.kernel.policies import RandomPolicy
from repro.kernel.sim import SimKernel
from repro.kernel.syscalls import Delay


def make_kernel(seed=0):
    return SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")


def attach_workload(kernel, client, *, operations=30, misuse=True, tag=""):
    """Producer/consumer traffic plus (optionally) an allocator misuser.

    The misuser's release-without-request is an ST-8b/ST-PX violation —
    purely event-pattern based, so the reports it produces are identical
    no matter when the windows that carry those events get evaluated.
    """
    buffer = BoundedBuffer(kernel, capacity=3)
    allocator = SingleResourceAllocator(kernel, name=f"allocator{tag}")
    client.attach(buffer, label="buffer")
    client.attach(allocator, label="allocator")

    def producer():
        for item in range(operations):
            yield Delay(0.11)
            yield from buffer.send(item)

    def consumer():
        for __ in range(operations):
            yield Delay(0.12)
            yield from buffer.receive()

    def misuser():
        yield Delay(2.3)
        yield from allocator.release()  # never requested: ST-8b + ST-PX
        yield Delay(5.0)
        yield from allocator.request()
        yield Delay(1.1)
        yield from allocator.release()

    kernel.spawn(producer(), f"producer{tag}")
    kernel.spawn(consumer(), f"consumer{tag}")
    if misuse:
        kernel.spawn(misuser(), f"misuser{tag}")
    return buffer, allocator
