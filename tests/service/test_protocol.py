"""Wire protocol: window codecs round-trip, frame discriminators."""

import json

import pytest

from repro.history.events import enter_event
from repro.history.sink import Segment
from repro.history.states import QueueEntry, SchedulingState
from repro.service.framing import FrameDecoder, encode_frame
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ack_frame,
    backpressure_frame,
    bye_frame,
    error_frame,
    frame_type,
    hello_frame,
    ping_frame,
    pong_frame,
    segment_from_wire,
    segment_to_wire,
    welcome_frame,
    window_frame,
)


def state(t):
    return SchedulingState(
        time=t,
        entry_queue=(),
        cond_queues={"NotFull": (QueueEntry(2, "consumer", t),)},
        running=(QueueEntry(1, "producer", t),),
    )


def segment(dropped=0):
    events = tuple(
        enter_event(seq, 1, "Send", float(seq), flag=1) for seq in range(3)
    )
    return Segment(
        previous=state(0.0), events=events, current=state(5.0), dropped=dropped
    )


class TestSegmentCodec:
    def test_roundtrip_preserves_everything(self):
        original = segment(dropped=2)
        rebuilt = segment_from_wire(segment_to_wire(original))
        assert rebuilt == original
        assert rebuilt.dropped == 2
        assert not rebuilt.complete

    def test_wire_form_is_json_compatible(self):
        wire = segment_to_wire(segment())
        assert json.loads(json.dumps(wire)) == wire

    def test_roundtrip_survives_framing(self):
        original = segment()
        frame = window_frame("buffer", 0, 5.0, original)
        (decoded,) = FrameDecoder().feed(encode_frame(frame))
        assert segment_from_wire(decoded["segment"]) == original

    def test_malformed_segment_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            segment_from_wire({"events": []})

    def test_missing_dropped_defaults_to_zero(self):
        wire = segment_to_wire(segment())
        del wire["dropped"]
        assert segment_from_wire(wire).complete


class TestFrameShapes:
    def test_hello_carries_version_and_resume(self):
        frame = hello_frame(
            "c1", "c1-0", [{"label": "buffer", "declaration": "..."}],
            {"buffer": 4},
        )
        assert frame["version"] == PROTOCOL_VERSION
        assert frame["resume"] == {"buffer": 4}
        assert frame_type(frame, expect="hello") == "hello"

    def test_window_carries_loss_accounting(self):
        frame = window_frame(
            "buffer", 7, 5.0, segment(), lost_windows=2, lost_events=9
        )
        assert (frame["lost_windows"], frame["lost_events"]) == (2, 9)
        assert frame["seq"] == 7

    def test_every_frame_has_a_type(self):
        frames = [
            welcome_frame({"buffer": -1}, 16, resumed=False),
            ack_frame({"buffer": 0}, 16),
            backpressure_frame("quota", in_flight=17),
            ping_frame(1.0),
            pong_frame(1.0),
            error_frame("boom"),
            bye_frame(),
        ]
        kinds = [frame_type(frame) for frame in frames]
        assert kinds == [
            "welcome", "ack", "backpressure", "ping", "pong", "error", "bye"
        ]

    def test_frame_type_rejects_missing_or_wrong_type(self):
        with pytest.raises(ProtocolError):
            frame_type({"no": "type"})
        with pytest.raises(ProtocolError):
            frame_type({"type": 3})
        with pytest.raises(ProtocolError):
            frame_type(bye_frame(), expect="hello")
