"""Reconnect storm: simultaneous disconnects must not perturb reports.

N clients all lose their connections at once (several times); every
client reconnects, resumes from its acked watermark and replays.  The
merged report stream must be byte-identical to a never-disconnected
baseline: same rules, same timestamps, same confidence — remote
evaluation is input-deterministic, and buffered replay makes the cuts
invisible to the checker.

The baseline run spawns the same saboteur process executing the same
delays (it just skips the cuts), so both runs present the sim kernel
with identical process structures and the workload interleaving — and
therefore every shipped window — is identical.
"""

import json

from repro.detection.durability import report_to_dict
from repro.kernel.syscalls import Delay
from repro.service.client import DetectionClient, client_process
from repro.service.server import DetectionServer, service_report_key
from repro.service.transport import SimNetwork, network_process
from tests.service.workload import attach_workload, make_kernel

CLIENTS = 3
ROUNDS = 10
INTERVAL = 5.0
STORMS = (17.0, 14.0, 23.0)  # inter-storm delays: 3 simultaneous cuts


def run_fleet(*, storm: bool):
    kernel = make_kernel(11)
    server = DetectionServer(kernel)
    net = SimNetwork(server)
    clients = []
    for index in range(CLIENTS):
        client = DetectionClient(
            kernel,
            net.connect,
            name=f"c{index}",
            interval=INTERVAL,
            backoff_base=0.5,
            backoff_max=4.0,
            seed=index,
        )
        attach_workload(
            kernel, client, operations=24, misuse=True, tag=str(index)
        )
        kernel.spawn(
            client_process(client, rounds=ROUNDS), f"client{index}"
        )
        clients.append(client)

    def saboteur():
        for pause in STORMS:
            yield Delay(pause)
            if storm:
                net.cut_all()  # every client drops in the same instant

    kernel.spawn(network_process(net, interval=0.5), "net")
    kernel.spawn(saboteur(), "saboteur")
    kernel.run(until=(ROUNDS + 30) * INTERVAL)
    kernel.raise_failures()
    return server, clients


def merged_stream(server):
    return [
        json.dumps(report_to_dict(report), sort_keys=True)
        for report in server.reports
    ]


def test_storm_report_stream_matches_undisturbed_baseline():
    baseline_server, baseline_clients = run_fleet(storm=False)
    storm_server, storm_clients = run_fleet(storm=True)

    # The storm really happened: every client reconnected, repeatedly.
    for client in storm_clients:
        assert client.stats()["connects"] >= 1 + len(STORMS)
        assert client.stats()["errors"] == []
    for client in baseline_clients:
        assert client.stats()["connects"] == 1

    # Every window made it back after the reconnects, none were lossy.
    for client in storm_clients:
        stats = client.stats()
        assert stats["windows_acked"] == stats["windows_captured"] > 0
        assert stats["pending_windows"] == 0
    assert storm_server.stats()["lossy_windows"] == 0

    # No duplicates slipped through the replays.
    keys = [service_report_key(r) for r in storm_server.reports]
    assert len(keys) == len(set(keys))

    # The merged report stream is byte-identical, order included.
    baseline = merged_stream(baseline_server)
    stormed = merged_stream(storm_server)
    assert len(baseline) > 0
    assert stormed == baseline
