"""Framing grammar: encode/decode under arbitrary splits, torn tails."""

import json

import pytest

from repro.errors import ServiceError
from repro.service.framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    encode_frame,
    good_jsonl_prefix,
)


def frames_of(*payloads):
    return b"".join(encode_frame(p) for p in payloads)


class TestEncodeFrame:
    def test_shape_is_length_newline_body_newline(self):
        raw = encode_frame({"type": "ping", "sent_at": 1.5})
        header, body = raw.split(b"\n", 1)
        assert int(header) == len(body)
        assert body.endswith(b"\n")
        assert json.loads(body) == {"type": "ping", "sent_at": 1.5}

    def test_body_is_compact_json(self):
        raw = encode_frame({"a": 1, "b": [2, 3]})
        assert b" " not in raw.split(b"\n", 1)[1]

    def test_frame_stream_is_also_a_line_stream(self):
        raw = frames_of({"a": 1}, {"b": 2})
        lines = raw.decode("utf-8").splitlines()
        assert len(lines) == 4
        assert lines[0].isdigit() and lines[2].isdigit()
        assert json.loads(lines[1]) == {"a": 1}
        assert json.loads(lines[3]) == {"b": 2}


class TestFrameDecoder:
    def test_roundtrip_single_feed(self):
        payloads = [{"type": "ping", "sent_at": t} for t in range(5)]
        decoder = FrameDecoder()
        assert decoder.feed(frames_of(*payloads)) == payloads
        assert decoder.frames_decoded == 5
        assert decoder.pending_bytes == 0

    def test_roundtrip_byte_at_a_time(self):
        payloads = [{"seq": n, "data": "x" * n} for n in range(4)]
        raw = frames_of(*payloads)
        decoder = FrameDecoder()
        out = []
        for index in range(len(raw)):
            out.extend(decoder.feed(raw[index : index + 1]))
        assert out == payloads

    def test_incomplete_frame_waits_in_buffer(self):
        raw = encode_frame({"type": "bye"})
        decoder = FrameDecoder()
        assert decoder.feed(raw[:-3]) == []
        assert decoder.pending_bytes > 0
        assert decoder.feed(raw[-3:]) == [{"type": "bye"}]

    def test_split_inside_length_header(self):
        raw = encode_frame({"k": "v" * 20})
        decoder = FrameDecoder()
        assert decoder.feed(raw[:1]) == []
        assert decoder.feed(raw[1:]) == [{"k": "v" * 20}]

    def test_non_digit_header_is_a_frame_error(self):
        with pytest.raises(FrameError):
            FrameDecoder().feed(b"nope\n{}\n")

    def test_non_digit_partial_header_detected_early(self):
        with pytest.raises(FrameError):
            FrameDecoder().feed(b"GET /")

    def test_unterminated_header_overflow_is_a_frame_error(self):
        with pytest.raises(FrameError):
            FrameDecoder().feed(b"9" * 30)

    def test_oversized_announcement_is_a_frame_error(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        with pytest.raises(FrameError):
            decoder.feed(b"65\n")

    def test_zero_length_announcement_is_a_frame_error(self):
        with pytest.raises(FrameError):
            FrameDecoder().feed(b"0\n")

    def test_undecodable_body_is_a_frame_error(self):
        with pytest.raises(FrameError):
            FrameDecoder().feed(b"4\n{,}\n")

    def test_non_object_body_is_a_frame_error(self):
        with pytest.raises(FrameError):
            FrameDecoder().feed(b"3\n42\n")

    def test_frame_error_is_a_service_error(self):
        assert issubclass(FrameError, ServiceError)

    def test_default_ceiling_matches_module_constant(self):
        assert FrameDecoder().max_frame_bytes == MAX_FRAME_BYTES

    def test_tiny_ceiling_rejected(self):
        with pytest.raises(ValueError):
            FrameDecoder(max_frame_bytes=1)


class TestGoodJsonlPrefix:
    GOOD = b'{"kind":"event","seq":0}\n{"kind":"event","seq":1}\n'

    def test_clean_stream_is_fully_good(self):
        assert good_jsonl_prefix(self.GOOD) == len(self.GOOD)

    def test_empty_stream(self):
        assert good_jsonl_prefix(b"") == 0

    def test_partial_final_line_stripped(self):
        raw = self.GOOD + b'{"kind":"ev'
        assert good_jsonl_prefix(raw) == len(self.GOOD)

    def test_trailing_blank_lines_stripped(self):
        raw = self.GOOD + b"\n\n"
        assert good_jsonl_prefix(raw) == len(self.GOOD)

    def test_dangling_length_prefix_stripped(self):
        # The truncated-length-prefix crash signature: a frame's header
        # line made it to disk but its body never did.
        raw = self.GOOD + b"187\n"
        assert good_jsonl_prefix(raw) == len(self.GOOD)

    def test_length_prefix_then_partial_body_stripped(self):
        raw = self.GOOD + b'42\n{"kind":'
        assert good_jsonl_prefix(raw) == len(self.GOOD)

    def test_one_junk_line_stripped(self):
        raw = self.GOOD + b'{"kind": torn\n'
        assert good_jsonl_prefix(raw) == len(self.GOOD)

    def test_non_object_json_line_stripped(self):
        raw = self.GOOD + b"[1,2,3]\n"
        assert good_jsonl_prefix(raw) == len(self.GOOD)

    def test_two_junk_lines_left_for_replay_to_raise_on(self):
        # Two distinct junk lines cannot come from one torn write; the
        # scan refuses to hide them so replay surfaces the corruption.
        raw = self.GOOD + b"junk one\njunk two\n"
        assert good_jsonl_prefix(raw) == len(raw) - len(b"junk two\n")

    def test_all_torn_stream_is_empty_prefix(self):
        assert good_jsonl_prefix(b"187\n") == 0
        assert good_jsonl_prefix(b'{"partial') == 0
