"""The seeded network-fault campaign: end-to-end acceptance checks."""

import pytest

from repro.injection.network import (
    NetworkChaosConfig,
    run_network_chaos_campaign,
)


def test_config_validation():
    with pytest.raises(ValueError):
        NetworkChaosConfig(clients=0)
    with pytest.raises(ValueError):
        NetworkChaosConfig(drop_rate=1.5)
    with pytest.raises(ValueError):
        NetworkChaosConfig(crash_round=99, rounds=20)


def test_campaign_passes_with_full_fault_menu():
    config = NetworkChaosConfig(
        seed=2, clients=2, rounds=18, operations=24, crash_round=8,
        crash_outage=10.0,
    )
    result = run_network_chaos_campaign(config)
    assert result.passed, result.summary()
    # The campaign exercised what it claims to exercise.
    assert result.server_crashes == 1
    assert result.reconnects > 0
    assert not result.client_errors
    assert result.duplicate_journal_keys == 0
    # Loss is never silent: every lossy window was evaluated degraded,
    # and no report from a lossy window claims CONFIRMED.
    assert result.degraded_windows == result.lossy_windows
    assert result.confirmed_from_lossy == 0
    assert "PASS" in result.summary()


def test_campaign_without_faults_is_clean():
    config = NetworkChaosConfig(
        seed=5, clients=2, rounds=12, operations=24, drop_rate=0.0,
        truncate_rate=0.0, stall_rate=0.0, crash_round=None,
    )
    result = run_network_chaos_campaign(config)
    assert result.passed, result.summary()
    assert result.lossy_windows == 0
    assert result.reconnects == 0
    assert result.delivered_reports > 0
