"""DetectionServer + DetectionClient: ingest, exactly-once, quarantine."""

import pytest

from repro.detection.config import DetectorConfig
from repro.detection.reports import Confidence, FaultReport
from repro.detection.rules import STRule
from repro.kernel.policies import RandomPolicy
from repro.kernel.sim import SimKernel
from repro.kernel.syscalls import Delay
from repro.service.client import DetectionClient, client_process
from repro.service.framing import FrameDecoder, encode_frame
from repro.service.protocol import PROTOCOL_VERSION, hello_frame
from repro.service.server import (
    DetectionServer,
    ServiceConfig,
    ServiceJournal,
    service_report_key,
)
from repro.service.transport import SimNetwork, network_process
from tests.service.workload import attach_workload, make_kernel

# --------------------------------------------------------------- fixtures


def make_report(confidence=Confidence.CONFIRMED, *, seq=3, message="m"):
    return FaultReport(
        rule=STRule.ONE_INSIDE,
        message=message,
        monitor="buffer",
        detected_at=5.0,
        pids=(1, 2),
        event_seq=seq,
        window_start=0.0,
        confidence=confidence,
    )


_CORPUS = {}


def corpus(seed=0):
    """Deterministic (hello, window frames) for one buffer stream.

    Built by running a real client whose connector never succeeds: every
    captured window stays in the replay buffer, frames and declaration
    exactly as a live client would ship them.
    """
    if seed not in _CORPUS:
        from repro.apps.bounded_buffer import BoundedBuffer

        kernel = make_kernel(seed)
        client = DetectionClient(
            kernel, lambda: None, name="direct", interval=1.0,
            replay_limit=1_000, seed=seed,
        )
        buffer = BoundedBuffer(kernel, capacity=3)
        client.attach(buffer, label="buffer")

        def producer():
            for item in range(12):
                yield Delay(0.11)
                yield from buffer.send(item)

        def consumer():
            for __ in range(12):
                yield Delay(0.12)
                yield from buffer.receive()

        kernel.spawn(producer(), "producer")
        kernel.spawn(consumer(), "consumer")
        kernel.spawn(
            client_process(client, rounds=6, drain_rounds=0), "client"
        )
        kernel.run(until=20.0)
        kernel.raise_failures()
        hello = hello_frame(
            client.name,
            client.token,
            [stream.spec() for stream in client.streams.values()],
            {label: -1 for label in client.streams},
        )
        windows = [dict(w) for w in client.streams["buffer"].pending]
        assert len(windows) >= 5
        _CORPUS[seed] = (hello, windows)
    hello, windows = _CORPUS[seed]
    return dict(hello), [dict(w) for w in windows]


def make_server(**kwargs):
    kwargs.setdefault("service", ServiceConfig(window_credits=4))
    return DetectionServer(make_kernel(0), **kwargs)


def decode_all(raw):
    return FrameDecoder().feed(raw)


def handshake(server, conn_id=1, hello=None, resume=None):
    if hello is None:
        hello, __ = corpus()
    if resume is not None:
        hello["resume"] = resume
    server.connect(conn_id)
    reply = server.feed(conn_id, encode_frame(hello))
    (welcome,) = decode_all(reply)
    return welcome


# ---------------------------------------------------------------- journal


class TestServiceJournal:
    def test_admit_dedups_identical_reports(self, tmp_path):
        journal = ServiceJournal(tmp_path / "j.jsonl")
        assert journal.admit(make_report())
        assert not journal.admit(make_report())
        assert journal.deduplicated == 1

    def test_dedup_key_is_confidence_blind(self, tmp_path):
        # A replayed window re-evaluated after a restart is stamped
        # DEGRADED; it must still collapse onto the original derivation.
        journal = ServiceJournal(tmp_path / "j.jsonl")
        assert journal.admit(make_report(Confidence.CONFIRMED))
        assert not journal.admit(make_report(Confidence.DEGRADED))
        assert len(journal.reports) == 1
        assert journal.reports[0].confidence is Confidence.CONFIRMED

    def test_dedup_key_ignores_message_text(self):
        confirmed = make_report(message="one")
        other = make_report(message="two")
        assert service_report_key(confirmed) == service_report_key(other)

    def test_reload_restores_reports_and_watermarks(self, tmp_path):
        journal = ServiceJournal(tmp_path / "j.jsonl")
        journal.admit(make_report())
        journal.advance("tok", "buffer", 7)
        journal.advance("tok", "buffer", 4)  # stale: must not regress
        journal.close()
        reopened = ServiceJournal(tmp_path / "j.jsonl")
        assert len(reopened.reports) == 1
        assert reopened.watermarks[("tok", "buffer")] == 7
        assert not reopened.admit(make_report(Confidence.DEGRADED))

    def test_torn_tail_truncated_on_reload(self, tmp_path):
        journal = ServiceJournal(tmp_path / "j.jsonl")
        journal.admit(make_report())
        journal.close()
        with open(tmp_path / "j.jsonl", "a", encoding="utf-8") as handle:
            handle.write("187\n")  # dangling frame-length prefix
        reopened = ServiceJournal(tmp_path / "j.jsonl")
        assert reopened.torn_tails_truncated == 1
        assert len(reopened.reports) == 1


_MISUSE_CORPUS = {}


def misuse_corpus(seed=1):
    """Like :func:`corpus`, but the workload includes the allocator
    misuser, so the shipped windows carry a real ST-8b fault."""
    if seed not in _MISUSE_CORPUS:
        kernel = make_kernel(seed)
        client = DetectionClient(
            kernel, lambda: None, name="misused", interval=2.0,
            replay_limit=1_000, seed=seed,
        )
        attach_workload(kernel, client, operations=12, misuse=True)
        kernel.spawn(
            client_process(client, rounds=6, drain_rounds=0), "client"
        )
        kernel.run(until=20.0)
        kernel.raise_failures()
        hello = hello_frame(
            client.name,
            client.token,
            [stream.spec() for stream in client.streams.values()],
            {label: -1 for label in client.streams},
        )
        windows = [
            dict(w)
            for stream in client.streams.values()
            for w in stream.pending
        ]
        _MISUSE_CORPUS[seed] = (hello, windows)
    hello, windows = _MISUSE_CORPUS[seed]
    return dict(hello), [dict(w) for w in windows]


# -------------------------------------------------------------- handshake


class TestHandshake:
    def test_welcome_carries_fresh_watermarks_and_credits(self):
        server = make_server()
        welcome = handshake(server)
        assert welcome["type"] == "welcome"
        assert welcome["watermarks"] == {"buffer": -1}
        assert welcome["credits"] == 4
        assert welcome["resumed"] is False

    def test_version_mismatch_quarantines(self):
        server = make_server()
        hello, __ = corpus()
        hello["version"] = PROTOCOL_VERSION + 1
        server.connect(1)
        (error,) = decode_all(server.feed(1, encode_frame(hello)))
        assert error["type"] == "error"
        assert server.connection_quarantined(1)

    def test_hello_without_streams_quarantines(self):
        server = make_server()
        hello, __ = corpus()
        hello["streams"] = []
        server.connect(1)
        (error,) = decode_all(server.feed(1, encode_frame(hello)))
        assert error["type"] == "error"

    def test_token_takeover_cuts_the_stale_connection(self):
        # Same session token on a new connection = the client noticed a
        # silent death before the server did; newest handshake wins.
        server = make_server()
        handshake(server, conn_id=1)
        server.connect(2)
        hello, __ = corpus()
        (welcome,) = decode_all(server.feed(2, encode_frame(hello)))
        assert welcome["resumed"] is True
        assert not server.connection_alive(1)
        assert server.connection_alive(2)
        assert server.stats()["sessions"] == 1

    def test_resume_watermark_skips_already_acked_windows(self):
        server = make_server()
        hello, windows = corpus()
        handshake(server, resume={"buffer": 1})
        for window in windows[:3]:  # seq 0,1 duplicates; seq 2 fresh
            server.feed(1, encode_frame(window))
        assert server.windows_duplicate == 2
        assert server.windows_accepted == 1


# ------------------------------------------------------------------ ingest


class TestIngest:
    def test_windows_evaluate_and_ack_watermark_advances(self):
        server = make_server()
        hello, windows = corpus()
        handshake(server)
        for window in windows:
            server.feed(1, encode_frame(window))
            server.poll()
        acks = decode_all(server.poll().get(1, b""))
        stats = server.stats()
        assert stats["windows_accepted"] == len(windows)
        assert stats["evaluations_run"] == len(windows)
        assert stats["lossy_windows"] == 0
        assert stats["degraded_windows"] == 0
        final_ack = (acks or [None])[-1]
        if final_ack is None:  # ack consumed by an earlier poll
            server._connections[1].ack_due = True
            (final_ack,) = decode_all(server.poll()[1])
        assert final_ack["watermarks"] == {"buffer": len(windows) - 1}

    def test_replayed_duplicate_is_skipped_and_reacked(self):
        server = make_server()
        hello, windows = corpus()
        handshake(server)
        server.feed(1, encode_frame(windows[0]))
        server.poll()
        server.feed(1, encode_frame(windows[0]))  # replay: ack was lost
        assert server.windows_duplicate == 1
        (ack,) = decode_all(server.poll()[1])
        assert ack["type"] == "ack"
        assert ack["watermarks"] == {"buffer": 0}

    def test_sequence_gap_forces_degraded_evaluation(self):
        server = make_server()
        hello, windows = corpus()
        handshake(server)
        server.feed(1, encode_frame(windows[0]))
        server.poll()
        server.feed(1, encode_frame(windows[3]))  # seq 1,2 never arrive
        server.poll()
        stats = server.stats()
        assert stats["gaps_detected"] == 1
        assert stats["lossy_windows"] == 1
        assert stats["degraded_windows"] == 1

    def test_client_reported_loss_forces_degraded_evaluation(self):
        server = make_server()
        hello, windows = corpus()
        handshake(server)
        window = dict(windows[0])
        window["lost_events"] = 5
        server.feed(1, encode_frame(window))
        server.poll()
        assert server.stats()["degraded_windows"] == 1

    def test_backpressure_at_credit_quota(self):
        server = make_server(service=ServiceConfig(window_credits=2))
        hello, windows = corpus()
        handshake(server)
        raw = b"".join(encode_frame(w) for w in windows[:2])
        replies = decode_all(server.feed(1, raw))  # no poll in between
        assert any(f["type"] == "backpressure" for f in replies)
        assert server.stats()["backpressure_sent"] == 1
        assert server.connection_alive(1)  # throttled, not poisoned

    def test_quota_abuse_quarantines_only_that_connection(self):
        server = make_server(service=ServiceConfig(window_credits=2))
        hello, windows = corpus()
        handshake(server, conn_id=1)
        server.connect(2)
        decode_all(server.feed(2, encode_frame(hello)))  # same token: takeover
        raw = b"".join(encode_frame(w) for w in windows)  # 2*quota and beyond
        replies = decode_all(server.feed(2, raw))
        assert replies[-1]["type"] == "error"
        assert server.connection_quarantined(2)
        assert len(server.quarantines) == 1

    def test_malformed_bytes_quarantine_not_the_fleet(self):
        server = make_server()
        hello, windows = corpus()
        handshake(server, conn_id=1)
        (error,) = decode_all(server.feed(1, b"GARBAGE not a frame\n"))
        assert error["type"] == "error"
        assert server.connection_quarantined(1)
        # A second connection (same session, post-takeover) still ingests.
        server.connect(2)
        decode_all(server.feed(2, encode_frame(hello)))
        server.feed(2, encode_frame(windows[0]))
        assert server.windows_accepted == 1

    def test_window_for_unknown_stream_quarantines(self):
        server = make_server()
        hello, windows = corpus()
        handshake(server)
        window = dict(windows[0])
        window["stream"] = "who"
        (error,) = decode_all(server.feed(1, encode_frame(window)))
        assert error["type"] == "error"

    def test_window_before_hello_quarantines(self):
        server = make_server()
        __, windows = corpus()
        server.connect(1)
        (error,) = decode_all(server.feed(1, encode_frame(windows[0])))
        assert error["type"] == "error"

    def test_oversized_window_quarantines(self):
        server = make_server(
            service=ServiceConfig(window_credits=4, max_events_per_window=1)
        )
        hello, windows = corpus()
        handshake(server)
        big = next(w for w in windows if len(w["segment"]["events"]) > 1)
        (error,) = decode_all(server.feed(1, encode_frame(big)))
        assert error["type"] == "error"

    def test_ping_answers_pong(self):
        server = make_server()
        handshake(server)
        (pong,) = decode_all(
            server.feed(1, encode_frame({"type": "ping", "sent_at": 9.5}))
        )
        assert pong == {"type": "pong", "sent_at": 9.5}


# ------------------------------------------------------- stream overrides


def override_hello(**overrides):
    """Corpus hello with per-stream overrides on a private copy."""
    hello, __ = corpus()
    hello["streams"] = [dict(s) for s in hello["streams"]]
    hello["streams"][0].update(overrides)
    return hello


class TestStreamOverrides:
    def test_numeric_override_applies_to_the_shadow_entry(self):
        server = make_server()
        welcome = handshake(server, hello=override_hello(tmax=7.5))
        assert welcome["type"] == "welcome"
        session = next(iter(server._sessions.values()))
        assert session.streams["buffer"].entry.config.tmax == 7.5

    def test_out_of_range_override_quarantines_not_crashes(self):
        server = make_server()
        server.connect(1)
        raw = encode_frame(override_hello(tmax=-1))
        (error,) = decode_all(server.feed(1, raw))  # must not raise
        assert error["type"] == "error"
        assert "tmax" in error["reason"]
        assert server.connection_quarantined(1)

    @pytest.mark.parametrize("bad", ["x", True, None, [3]])
    def test_non_numeric_override_quarantines_not_crashes(self, bad):
        server = make_server()
        server.connect(1)
        raw = encode_frame(override_hello(tlimit=bad))
        (error,) = decode_all(server.feed(1, raw))  # must not raise
        assert error["type"] == "error"
        assert server.connection_quarantined(1)
        # The poisoned hello never reached the fleet: a clean client works.
        assert handshake(server, conn_id=2)["type"] == "welcome"


# ------------------------------------------------------- evaluation retry


class TestEvaluationRetry:
    def test_journal_failure_retries_without_new_windows(self):
        # A round that dies *after* evaluate_phase drained the captures
        # (journal write fails) must still be retried by the next poll —
        # a backpressured client sends nothing new to trigger it.
        server = make_server(service=ServiceConfig(window_credits=50))
        hello, windows = misuse_corpus()
        handshake(server, hello=hello)
        server.feed(1, b"".join(encode_frame(w) for w in windows))
        assert server._connections[1].in_flight == len(windows)

        state = {"fail": True}
        original = server.journal.admit

        def flaky(report):
            if state["fail"]:
                state["fail"] = False
                raise OSError("disk full")
            return original(report)

        server.journal.admit = flaky
        assert server.poll() == {}  # round fails mid-journal: no acks
        assert not server.engine._pending_captures  # drain already happened
        assert server._pending_meta  # un-acked windows still owed a retry

        acks = server.poll()  # no new window arrived: retry must still run
        assert 1 in acks
        (ack,) = decode_all(acks[1])
        assert ack["type"] == "ack"
        labels = {w["stream"] for w in windows}
        assert ack["watermarks"] == {
            label: max(w["seq"] for w in windows if w["stream"] == label)
            for label in labels
        }
        assert server._connections[1].in_flight == 0
        assert not server._pending_meta
        # Reports evaluated in the failed round were not lost on retry...
        assert "ST-8b" in {report.rule_id for report in server.reports}
        # ...and the recovery did not double-deliver anything.
        keys = [service_report_key(r) for r in server.reports]
        assert len(keys) == len(set(keys))

    def test_idle_polls_feed_the_stall_watchdog(self):
        server = make_server(config=DetectorConfig(stall_timeout=5.0))
        handshake(server)
        for __ in range(4):
            server.kernel.clock.advance_by(3.0)
            server.poll()
        # 12 idle virtual seconds > stall_timeout, but idle is healthy.
        assert server.supervisor.stalls_detected == 0


# ---------------------------------------------------------- crash recovery


class TestCrashRecovery:
    def test_restart_resumes_watermarks_and_dedups_reports(self, tmp_path):
        hello, windows = corpus()
        first = make_server(durable_dir=tmp_path)
        handshake(first)
        for window in windows[:3]:
            first.feed(1, encode_frame(window))
            first.poll()
        delivered = [service_report_key(r) for r in first.delivered]
        first.close()

        second = make_server(durable_dir=tmp_path)
        recovery = second.recover()
        assert recovery["streams"] == 1
        welcome = handshake(second, resume={"buffer": -1})
        # The journal, not the client, is authoritative after a restart.
        assert welcome["watermarks"] == {"buffer": 2}
        assert welcome["resumed"] is True
        for window in windows:  # full replay: 0..2 duplicates, rest fresh
            second.feed(1, encode_frame(window))
            second.poll()
        assert second.windows_duplicate == 3
        assert second.windows_accepted == len(windows) - 3
        # First post-restart window ran against a cold checker: degraded.
        assert second.stats()["resync_windows"] == 1
        assert second.stats()["degraded_windows"] >= 1
        keys = [service_report_key(r) for r in second.journal.reports]
        assert len(keys) == len(set(keys))
        assert set(delivered) <= set(keys)

    def test_resumed_flag_is_per_session_after_recovery(self, tmp_path):
        hello, windows = corpus()
        first = make_server(durable_dir=tmp_path)
        handshake(first)
        first.feed(1, encode_frame(windows[0]))
        first.poll()
        first.close()

        second = make_server(durable_dir=tmp_path)
        second.recover()
        fresh = dict(hello)
        fresh["token"] = "never-seen-before"
        fresh["resume"] = {}
        # A brand-new session is not a resume, no matter what other
        # sessions' watermarks the restarted server recovered.
        assert handshake(second, hello=fresh)["resumed"] is False
        # The session the watermarks belong to does resume.
        assert handshake(second, conn_id=2)["resumed"] is True


# --------------------------------------------------------- replay eviction


class TestReplayEviction:
    def test_eviction_folds_loss_into_first_unsent_window(self):
        # A frame already shipped on the live connection was encoded at
        # send time: mutating it is invisible to the server.  Shed-window
        # loss must ride the first *unsent* survivor instead.
        kernel = make_kernel(0)
        client = DetectionClient(
            kernel, lambda: None, name="evict", interval=1.0,
            replay_limit=4, seed=0,
        )
        from repro.apps.bounded_buffer import BoundedBuffer

        client.attach(BoundedBuffer(kernel, capacity=3), label="buffer")
        for __ in range(4):
            client.capture()
        stream = client.streams["buffer"]
        assert len(stream.pending) == 4
        stream.sent = 2  # first two frames are on the wire, unacked

        client.capture()  # overflow: the oldest (sent) window is shed
        assert len(stream.pending) == 4
        assert stream.sent == 1  # shed frame left the sent prefix
        assert stream.windows_evicted == 1
        # The surviving sent frame is untouched; the first unsent frame
        # carries the loss and will reach the server on the next pump.
        assert stream.pending[0]["lost_windows"] == 0
        assert stream.pending[1]["lost_windows"] == 1
        assert all(w["lost_windows"] == 0 for w in stream.pending[2:])

    def test_eviction_with_nothing_sent_folds_into_the_oldest(self):
        kernel = make_kernel(0)
        client = DetectionClient(
            kernel, lambda: None, name="evict", interval=1.0,
            replay_limit=2, seed=0,
        )
        from repro.apps.bounded_buffer import BoundedBuffer

        client.attach(BoundedBuffer(kernel, capacity=3), label="buffer")
        for __ in range(4):
            client.capture()
        stream = client.streams["buffer"]
        assert len(stream.pending) == 2
        assert stream.windows_evicted == 2
        assert stream.pending[0]["lost_windows"] == 2
        assert stream.pending[1]["lost_windows"] == 0


# ---------------------------------------------------- end-to-end (SimNetwork)


class TestEndToEndSim:
    def test_live_client_ships_detects_and_drains(self):
        kernel = make_kernel(3)
        server = DetectionServer(kernel)
        net = SimNetwork(server)
        client = DetectionClient(
            kernel, net.connect, name="c0", interval=5.0, seed=3
        )
        attach_workload(kernel, client, operations=30, misuse=True)
        kernel.spawn(client_process(client, rounds=12), "client")
        kernel.spawn(network_process(net, interval=0.5), "net")
        kernel.run(until=200.0)
        kernel.raise_failures()
        stats = client.stats()
        assert stats["errors"] == []
        assert stats["windows_acked"] == stats["windows_captured"] > 0
        assert stats["pending_windows"] == 0
        rules = {report.rule_id for report in server.reports}
        assert "ST-8b" in rules  # the misuser's release-without-request
        assert server.stats()["lossy_windows"] == 0
        assert all(
            report.confidence is Confidence.CONFIRMED
            for report in server.reports
        )

    def test_connection_cut_recovers_without_loss(self):
        kernel = make_kernel(4)
        server = DetectionServer(kernel)
        net = SimNetwork(server)
        client = DetectionClient(
            kernel, net.connect, name="c0", interval=5.0,
            backoff_base=0.5, backoff_max=4.0, seed=4,
        )
        attach_workload(kernel, client, operations=30, misuse=True)

        def saboteur():
            for __ in range(3):
                yield Delay(17.0)
                net.cut_all()

        kernel.spawn(client_process(client, rounds=12), "client")
        kernel.spawn(network_process(net, interval=0.5), "net")
        kernel.spawn(saboteur(), "saboteur")
        kernel.run(until=300.0)
        kernel.raise_failures()
        stats = client.stats()
        assert stats["errors"] == []
        assert stats["connects"] >= 4  # initial + one per cut
        assert stats["windows_acked"] == stats["windows_captured"] > 0
        # Buffered replay covered every cut: nothing lossy, nothing lost.
        assert server.stats()["lossy_windows"] == 0
        keys = [service_report_key(r) for r in server.reports]
        assert len(keys) == len(set(keys))
