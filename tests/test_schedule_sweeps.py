"""Schedule sweeps: classic-app invariants across many scheduling seeds.

Uses the seed-exploration harness to run each workload under dozens of
interleavings and assert its safety/liveness invariant on every one —
the substrate-level complement to the detector-based tests.
"""

import pytest

from repro.apps import (
    CyclicBarrier,
    ForkTable,
    ReadersWriters,
    SharedAccount,
    philosopher,
)
from repro.kernel import Delay
from repro.kernel.explore import explore_seeds

SEEDS = range(25)


class TestReadersWritersSweep:
    def test_no_overlap_any_schedule(self):
        def build(kernel):
            rw = ReadersWriters(kernel)
            violations = []

            def reader(i):
                for __ in range(4):
                    yield Delay(0.02 * (i + 1))
                    yield from rw.start_read()
                    if rw.writing:
                        violations.append("read-during-write")
                    yield Delay(0.01)
                    yield from rw.end_read()

            def writer(i):
                for __ in range(3):
                    yield Delay(0.05 * (i + 1))
                    yield from rw.start_write()
                    if rw.active_readers:
                        violations.append("write-during-read")
                    yield Delay(0.02)
                    yield from rw.end_write()

            for i in range(3):
                kernel.spawn(reader(i))
            for i in range(2):
                kernel.spawn(writer(i))
            return (rw, violations)

        def check(kernel, context):
            rw, violations = context
            if violations:
                return f"exclusion violated: {violations[0]}"
            if rw.reads_served != 12 or rw.writes_served != 6:
                return (
                    f"lost operations: reads={rw.reads_served} "
                    f"writes={rw.writes_served}"
                )
            return None

        result = explore_seeds(build, check, seeds=SEEDS, until=200)
        assert result.all_passed, result.failures


class TestPhilosopherSweep:
    def test_everyone_eats_every_schedule(self):
        def build(kernel):
            table = ForkTable(kernel, seats=5)
            for seat in range(5):
                kernel.spawn(philosopher(table, seat, meals=3))
            return table

        def check(kernel, table):
            if table.meals != (3, 3, 3, 3, 3):
                return f"meals lost: {table.meals}"
            return None

        result = explore_seeds(
            build, check, seeds=SEEDS, until=500, max_steps=3_000_000
        )
        assert result.all_passed, result.failures
        assert not result.deadlocked_seeds


class TestBarrierSweep:
    def test_lockstep_every_schedule(self):
        def build(kernel):
            barrier = CyclicBarrier(kernel, parties=4)
            generations = []

            def party(i):
                for __ in range(3):
                    yield Delay(0.05 * (i + 1))
                    generations.append((yield from barrier.await_barrier()))

            for i in range(4):
                kernel.spawn(party(i))
            return (barrier, generations)

        def check(kernel, context):
            barrier, generations = context
            if barrier.generation != 3:
                return f"only {barrier.generation} rounds completed"
            if sorted(generations) != [0] * 4 + [1] * 4 + [2] * 4:
                return f"rounds interleaved wrongly: {sorted(generations)}"
            return None

        result = explore_seeds(build, check, seeds=SEEDS, until=200)
        assert result.all_passed, result.failures


class TestAccountSweep:
    def test_no_overdraft_and_conservation(self):
        def build(kernel):
            account = SharedAccount(kernel, 10)

            def depositor():
                for __ in range(8):
                    yield Delay(0.05)
                    yield from account.deposit(5)

            def withdrawer():
                for __ in range(5):
                    yield Delay(0.07)
                    yield from account.withdraw(10)

            kernel.spawn(depositor())
            kernel.spawn(withdrawer())
            return account

        def check(kernel, account):
            # 10 + 8*5 - 5*10 = 0
            if account.balance != 0:
                return f"conservation broken: balance={account.balance}"
            return None

        result = explore_seeds(build, check, seeds=SEEDS, until=200)
        assert result.all_passed, result.failures
