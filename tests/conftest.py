"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Iterator, Optional

import pytest

from repro.history import HistoryDatabase
from repro.kernel import Delay, RandomPolicy, SimKernel
from repro.kernel.syscalls import Syscall


@pytest.fixture
def kernel() -> SimKernel:
    """A deterministic simulation kernel with seeded random scheduling."""
    return SimKernel(RandomPolicy(seed=0), on_deadlock="stop")


@pytest.fixture
def fifo_kernel() -> SimKernel:
    """A FIFO simulation kernel (fully deterministic ordering)."""
    return SimKernel(on_deadlock="stop")


@pytest.fixture
def history() -> HistoryDatabase:
    return HistoryDatabase(retain_full_trace=True)


def run_to_completion(kernel: SimKernel, until: Optional[float] = None):
    """Run the kernel and re-raise any process failure."""
    result = kernel.run(until=until)
    kernel.raise_failures()
    return result


def producer(buffer, items: int, delay: float = 0.05) -> Iterator[Syscall]:
    for item in range(items):
        yield Delay(delay)
        yield from buffer.send(item)


def consumer(buffer, items: int, sink: Optional[list] = None,
             delay: float = 0.05) -> Iterator[Syscall]:
    for __ in range(items):
        yield Delay(delay)
        item = yield from buffer.receive()
        if sink is not None:
            sink.append(item)
