"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main
from repro.history import HistoryDatabase, dump_trace


class TestDemo:
    def test_demo_runs_clean_then_faulty(self, capsys):
        assert main(["demo", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "clean run" in output
        assert "clean=True" in output
        assert "faulty run" in output
        assert "ST-3" in output


class TestSelftest:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        assert "detected=True" in capsys.readouterr().out


class TestCheck:
    @pytest.fixture
    def clean_trace(self, kernel, tmp_path):
        from repro.apps import BoundedBuffer
        from tests.conftest import consumer, producer

        history = HistoryDatabase(retain_full_trace=True)
        buffer = BoundedBuffer(kernel, capacity=3, history=history)
        kernel.spawn(producer(buffer, 8))
        kernel.spawn(consumer(buffer, 8))
        kernel.run(until=10)
        kernel.raise_failures()
        path = tmp_path / "trace.jsonl"
        with path.open("w") as stream:
            dump_trace(stream, history.full_trace, history.full_states)
        return path

    def test_clean_trace_exits_zero(self, clean_trace, capsys):
        status = main(
            ["check", str(clean_trace), "--monitor", "buffer", "--rmax", "3"]
        )
        assert status == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_faulty_trace_exits_nonzero(self, tmp_path, capsys):
        from repro.history.events import enter_event

        path = tmp_path / "bad.jsonl"
        with path.open("w") as stream:
            dump_trace(
                stream,
                (
                    enter_event(0, 1, "Send", 0.1, 1),
                    enter_event(1, 2, "Send", 0.2, 1),  # mutex violation
                ),
            )
        status = main(["check", str(path), "--monitor", "buffer"])
        assert status == 1
        assert "FD-1a" in capsys.readouterr().out


class TestArgumentHandling:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFaultsCommand:
    def test_reference_card_covers_all_levels(self, capsys):
        assert main(["faults"]) == 0
        output = capsys.readouterr().out
        assert "Level I" in output
        assert "Level II" in output
        assert "Level III" in output
        assert "I.a.1" in output and "III.c" in output


class TestJsonEnvelope:
    """Every result-producing subcommand writes the same top-level schema:
    ``{"command": ..., "seed": ..., "results": {...}}``."""

    def test_demo_json_schema(self, tmp_path):
        import json

        path = tmp_path / "demo.json"
        assert main(["demo", "--seed", "7", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"command", "seed", "results"}
        assert payload["command"] == "demo"
        assert payload["seed"] == 7
        assert payload["results"]["clean_run"]["clean"] is True
        assert payload["results"]["faulty_run"]["reports"] > 0
        assert payload["results"]["faulty_run"]["rules"]

    def test_demo_json_stdout(self, capsys):
        import json

        assert main(["demo", "--json", "-"]) == 0
        output = capsys.readouterr().out
        # The envelope is printed last, after the human-readable lines.
        payload = json.loads(output[output.rindex('{\n  "command"'):])
        assert payload["command"] == "demo"

    def test_scaling_shards_json_schema(self, tmp_path):
        import json

        path = tmp_path / "scaling.json"
        status = main(
            [
                "scaling", "--backend", "sim", "--seed", "3",
                "--counts", "4", "--shards", "1", "2",
                "--quick", "--json", str(path),
            ]
        )
        assert status == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"command", "seed", "results"}
        assert payload["command"] == "scaling"
        assert payload["seed"] == 3
        rows = payload["results"]["rows"]
        assert {row["shards"] for row in rows} == {1, 2}
        sharded = next(row for row in rows if row["shards"] == 2)
        assert len(sharded["per_shard"]) == 2
        for stat in sharded["per_shard"]:
            assert {"shard", "monitors", "offset", "worldstop_max"} <= set(stat)

    def test_selftest_json_schema(self, tmp_path):
        import json

        path = tmp_path / "selftest.json"
        assert main(["selftest", "--seed", "0", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "selftest"
        assert payload["results"]["campaign"]["detected"] is True

    def test_chaos_json_schema(self, tmp_path):
        import json

        path = tmp_path / "chaos.json"
        status = main(
            ["chaos", "--seed", "0", "--rounds", "20", "--json", str(path)]
        )
        payload = json.loads(path.read_text())
        assert payload["command"] == "chaos"
        assert payload["results"]["passed"] is (status == 0)
        assert "summary" in payload["results"]

    def test_coverage_json_schema(self, tmp_path):
        import json

        path = tmp_path / "coverage.json"
        assert main(["coverage", "--seed", "0", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"command", "seed", "results"}
        assert payload["command"] == "coverage"
        assert payload["results"]["total"] > 0
        assert payload["results"]["faults"]

    def test_overhead_json_schema_and_metrics_block(self, tmp_path):
        import json

        path = tmp_path / "overhead.json"
        status = main(
            [
                "overhead", "--backend", "sim", "--repeats", "1",
                "--seed", "0", "--intervals", "1.0",
                "--scenarios", "allocator", "--json", str(path),
            ]
        )
        assert status == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"command", "seed", "results"}
        assert payload["command"] == "overhead"
        assert payload["results"]["rows"]
        metrics = payload["results"]["metrics"]
        assert metrics["schema"] == "repro-metrics/1"
        names = {entry["name"] for entry in metrics["metrics"]}
        assert "repro_bench_overhead_ratio" in names

    def test_crash_recovery_json_schema(self, tmp_path):
        import json

        path = tmp_path / "crash.json"
        status = main(
            [
                "crash-recovery", "--seed", "0", "--rounds", "8",
                "--crashes", "1", "--json", str(path),
            ]
        )
        payload = json.loads(path.read_text())
        assert set(payload) == {"command", "seed", "results"}
        assert payload["command"] == "crash-recovery"
        assert payload["results"]["passed"] is (status == 0)

    def test_serve_json_schema_and_metrics_out(self, tmp_path):
        import json

        socket_path = tmp_path / "serve.sock"
        metrics_path = tmp_path / "serve_metrics.json"
        path = tmp_path / "serve.json"
        status = main(
            [
                "serve", "--socket", str(socket_path),
                "--runtime", "0.4", "--metrics-out", str(metrics_path),
                "--json", str(path),
            ]
        )
        assert status == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"command", "seed", "results"}
        assert payload["command"] == "serve"
        assert "frames_received" in payload["results"]
        dumped = json.loads(metrics_path.read_text())
        assert dumped["schema"] == "repro-metrics/1"
        names = {entry["name"] for entry in dumped["metrics"]}
        assert "repro_service_frames_received_total" in names

    def test_service_client_json_schema(self, tmp_path):
        import json
        import os
        import subprocess
        import sys
        import time

        socket_path = tmp_path / "daemon.sock"
        ready = tmp_path / "daemon.ready"
        path = tmp_path / "client.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in ("src", env.get("PYTHONPATH")) if part
        )
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", str(socket_path), "--ready-file", str(ready),
                "--runtime", "8",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 8.0
            while not ready.exists():
                assert time.monotonic() < deadline, "daemon never came up"
                time.sleep(0.05)
            status = main(
                [
                    "service-client", "--socket", str(socket_path),
                    "--rounds", "3", "--interval", "1.0",
                    "--time-scale", "0.03", "--seed", "0",
                    "--json", str(path),
                ]
            )
        finally:
            daemon.terminate()
            daemon.wait(timeout=10)
        assert status == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"command", "seed", "results"}
        assert payload["command"] == "service-client"
        assert payload["results"]["windows_acked"] >= 0

    def test_service_smoke_json_schema(self, tmp_path):
        import json

        path = tmp_path / "smoke.json"
        status = main(
            [
                "service-smoke", "--rounds", "4", "--interval", "1.0",
                "--time-scale", "0.03", "--kill-after", "0.8",
                "--json", str(path),
            ]
        )
        assert status == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"command", "seed", "results"}
        assert payload["command"] == "service-smoke"
        assert payload["results"]["duplicate_reports"] == 0
        assert payload["results"]["daemon_restarted"] is True

    def test_metrics_json_schema(self, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        status = main(
            [
                "metrics", "--seed", "0", "--monitors", "2",
                "--operations", "20", "--until", "10",
                "--stable", "--json", str(path),
            ]
        )
        assert status == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"command", "seed", "results"}
        assert payload["command"] == "metrics"
        assert payload["seed"] == 0
        assert payload["results"]["schema"] == "repro-metrics/1"
        names = {entry["name"] for entry in payload["results"]["metrics"]}
        assert "repro_engine_checkpoints_total" in names

    def test_gates_run_json_schema_and_exit_codes(self, tmp_path):
        import json

        metrics_path = tmp_path / "bench.json"
        metrics_path.write_text(
            json.dumps(
                {
                    "schema": "repro-metrics/1",
                    "metrics": [
                        {
                            "name": "repro_bench_hits",
                            "kind": "gauge",
                            "labels": {},
                            "value": 5.0,
                        }
                    ],
                }
            )
        )
        spec = tmp_path / "gates.toml"
        spec.write_text(
            '[[gate]]\nname = "hits-nonzero"\n'
            'metric = "repro_bench_hits"\nop = ">"\nthreshold = 0\n'
        )
        path = tmp_path / "gates.json"
        status = main(
            [
                "gates", "run", str(spec),
                "--metrics", str(metrics_path), "--json", str(path),
            ]
        )
        assert status == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"command", "seed", "results"}
        assert payload["command"] == "gates"
        assert payload["results"]["failed"] == 0
        assert payload["results"]["gates"][0]["status"] == "pass"

        failing = tmp_path / "failing.toml"
        failing.write_text(
            '[[gate]]\nname = "hits-bounded"\n'
            'metric = "repro_bench_hits"\nop = "<"\nthreshold = 1\n'
        )
        fail_out = tmp_path / "gates_fail.json"
        status = main(
            [
                "gates", "run", str(failing),
                "--metrics", str(metrics_path), "--json", str(fail_out),
            ]
        )
        assert status == 1
        payload = json.loads(fail_out.read_text())
        assert payload["results"]["failed"] == 1
        assert payload["results"]["gates"][0]["status"] == "fail"
