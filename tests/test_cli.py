"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main
from repro.history import HistoryDatabase, dump_trace


class TestDemo:
    def test_demo_runs_clean_then_faulty(self, capsys):
        assert main(["demo", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "clean run" in output
        assert "clean=True" in output
        assert "faulty run" in output
        assert "ST-3" in output


class TestSelftest:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        assert "detected=True" in capsys.readouterr().out


class TestCheck:
    @pytest.fixture
    def clean_trace(self, kernel, tmp_path):
        from repro.apps import BoundedBuffer
        from tests.conftest import consumer, producer

        history = HistoryDatabase(retain_full_trace=True)
        buffer = BoundedBuffer(kernel, capacity=3, history=history)
        kernel.spawn(producer(buffer, 8))
        kernel.spawn(consumer(buffer, 8))
        kernel.run(until=10)
        kernel.raise_failures()
        path = tmp_path / "trace.jsonl"
        with path.open("w") as stream:
            dump_trace(stream, history.full_trace, history.full_states)
        return path

    def test_clean_trace_exits_zero(self, clean_trace, capsys):
        status = main(
            ["check", str(clean_trace), "--monitor", "buffer", "--rmax", "3"]
        )
        assert status == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_faulty_trace_exits_nonzero(self, tmp_path, capsys):
        from repro.history.events import enter_event

        path = tmp_path / "bad.jsonl"
        with path.open("w") as stream:
            dump_trace(
                stream,
                (
                    enter_event(0, 1, "Send", 0.1, 1),
                    enter_event(1, 2, "Send", 0.2, 1),  # mutex violation
                ),
            )
        status = main(["check", str(path), "--monitor", "buffer"])
        assert status == 1
        assert "FD-1a" in capsys.readouterr().out


class TestArgumentHandling:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFaultsCommand:
    def test_reference_card_covers_all_levels(self, capsys):
        assert main(["faults"]) == 0
        output = capsys.readouterr().out
        assert "Level I" in output
        assert "Level II" in output
        assert "Level III" in output
        assert "I.a.1" in output and "III.c" in output


class TestJsonEnvelope:
    """Every result-producing subcommand writes the same top-level schema:
    ``{"command": ..., "seed": ..., "results": {...}}``."""

    def test_demo_json_schema(self, tmp_path):
        import json

        path = tmp_path / "demo.json"
        assert main(["demo", "--seed", "7", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"command", "seed", "results"}
        assert payload["command"] == "demo"
        assert payload["seed"] == 7
        assert payload["results"]["clean_run"]["clean"] is True
        assert payload["results"]["faulty_run"]["reports"] > 0
        assert payload["results"]["faulty_run"]["rules"]

    def test_demo_json_stdout(self, capsys):
        import json

        assert main(["demo", "--json", "-"]) == 0
        output = capsys.readouterr().out
        # The envelope is printed last, after the human-readable lines.
        payload = json.loads(output[output.rindex('{\n  "command"'):])
        assert payload["command"] == "demo"

    def test_scaling_shards_json_schema(self, tmp_path):
        import json

        path = tmp_path / "scaling.json"
        status = main(
            [
                "scaling", "--backend", "sim", "--seed", "3",
                "--counts", "4", "--shards", "1", "2",
                "--quick", "--json", str(path),
            ]
        )
        assert status == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"command", "seed", "results"}
        assert payload["command"] == "scaling"
        assert payload["seed"] == 3
        rows = payload["results"]["rows"]
        assert {row["shards"] for row in rows} == {1, 2}
        sharded = next(row for row in rows if row["shards"] == 2)
        assert len(sharded["per_shard"]) == 2
        for stat in sharded["per_shard"]:
            assert {"shard", "monitors", "offset", "worldstop_max"} <= set(stat)

    def test_selftest_json_schema(self, tmp_path):
        import json

        path = tmp_path / "selftest.json"
        assert main(["selftest", "--seed", "0", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "selftest"
        assert payload["results"]["campaign"]["detected"] is True

    def test_chaos_json_schema(self, tmp_path):
        import json

        path = tmp_path / "chaos.json"
        status = main(
            ["chaos", "--seed", "0", "--rounds", "20", "--json", str(path)]
        )
        payload = json.loads(path.read_text())
        assert payload["command"] == "chaos"
        assert payload["results"]["passed"] is (status == 0)
        assert "summary" in payload["results"]
