"""Tests for the Hoare-discipline bounded buffer (urgent-stack exercise)."""

import pytest

from repro.apps import HoareBoundedBuffer
from repro.detection import (
    DetectorConfig,
    FaultDetector,
    check_full_trace,
    detector_process,
)
from repro.history import HistoryDatabase
from repro.kernel import Delay, RandomPolicy, SimKernel
from repro.monitor import Discipline
from tests.conftest import consumer, producer


class TestSemantics:
    def test_declares_signal_and_wait(self, kernel):
        buffer = HoareBoundedBuffer(kernel, capacity=2)
        assert buffer.declaration.discipline is Discipline.SIGNAL_AND_WAIT

    def test_fifo_delivery(self, kernel):
        buffer = HoareBoundedBuffer(kernel, capacity=3)
        received = []
        kernel.spawn(producer(buffer, 20))
        kernel.spawn(consumer(buffer, 20, received))
        kernel.run(until=30)
        kernel.raise_failures()
        assert received == list(range(20))

    def test_signal_events_recorded(self, kernel):
        history = HistoryDatabase(retain_full_trace=True)
        buffer = HoareBoundedBuffer(kernel, capacity=3, history=history)
        kernel.spawn(producer(buffer, 5))
        kernel.spawn(consumer(buffer, 5))
        kernel.run(until=10)
        kernel.raise_failures()
        signals = [event for event in history.full_trace if event.is_signal]
        # every Send and every Receive signals exactly once
        assert len(signals) == 10

    def test_urgent_stack_actually_used(self, fifo_kernel):
        """A hand-off must park the signaller on the urgent stack while the
        resumed waiter is still inside the monitor."""
        buffer = HoareBoundedBuffer(fifo_kernel, capacity=1)
        monitor = buffer.monitor
        urgent_seen = []

        def waiter():
            yield from monitor.enter("Receive")
            yield from monitor.wait("empty")
            # Resumed by the signal: the signaller must now be on urgent.
            urgent_seen.append(
                tuple(e.pid for e in monitor.core.snapshot().urgent)
            )
            monitor.exit()

        def signaller():
            yield Delay(0.5)
            yield from monitor.enter("Send")
            yield from monitor.signal("empty")
            monitor.exit()

        fifo_kernel.spawn(waiter(), "waiter")
        signaller_pid = fifo_kernel.spawn(signaller(), "signaller")
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert urgent_seen == [(signaller_pid,)]


class TestDetection:
    @pytest.mark.parametrize("seed", [1, 7, 19])
    def test_clean_runs_are_report_free(self, seed):
        kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
        history = HistoryDatabase(retain_full_trace=True)
        buffer = HoareBoundedBuffer(
            kernel, capacity=3, history=history, service_time=0.02
        )
        detector = FaultDetector(
            buffer, DetectorConfig(interval=0.5, tmax=30.0, tio=30.0)
        )
        for __ in range(2):
            kernel.spawn(producer(buffer, 15, delay=0.05))
            kernel.spawn(consumer(buffer, 15, delay=0.04))
        kernel.spawn(detector_process(detector), "detector")
        kernel.run(until=30)
        kernel.raise_failures()
        assert detector.clean, [str(r) for r in detector.reports]
        fd_reports = check_full_trace(
            buffer.declaration,
            history.full_trace,
            final_state=buffer.snapshot(),
            tmax=30.0,
            tio=30.0,
        )
        assert fd_reports == []

    def test_integrity_fault_still_detected_under_hoare(self, kernel):
        """Algorithm-2's discipline-aware counting still catches level-II
        faults on the Hoare variant."""
        from repro.apps import BufferIntegrityFault
        from repro.detection import FaultClass

        history = HistoryDatabase()
        buffer = HoareBoundedBuffer(
            kernel,
            capacity=2,
            history=history,
            integrity_fault=BufferIntegrityFault.RECEIVE_IGNORES_EMPTY,
        )
        detector = FaultDetector(
            buffer, DetectorConfig(interval=0.5, tmax=None, tio=None)
        )
        kernel.spawn(producer(buffer, 5, delay=0.2))
        kernel.spawn(consumer(buffer, 15, delay=0.02))
        kernel.spawn(detector_process(detector), "detector")
        kernel.run(until=10)
        assert any(
            report.implicates(FaultClass.RECEIVE_EXCEEDS_SEND)
            for report in detector.reports
        )
