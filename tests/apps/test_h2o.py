"""Tests for the H2O group-rendezvous monitor."""

import pytest

from repro.apps.h2o import WaterFactory
from repro.detection import DetectorConfig, FaultDetector, detector_process
from repro.history import HistoryDatabase
from repro.kernel import Delay, RandomPolicy, SimKernel
from repro.kernel.explore import explore_seeds


def hydrogen(factory, log, delay=0.0):
    if delay:
        yield Delay(delay)
    molecule = yield from factory.bond_hydrogen()
    log.append(("H", molecule))


def oxygen(factory, log, delay=0.0):
    if delay:
        yield Delay(delay)
    molecule = yield from factory.bond_oxygen()
    log.append(("O", molecule))


def molecule_composition(log):
    """Map molecule index -> (hydrogens, oxygens) that crossed for it."""
    composition: dict[int, list[int]] = {}
    for species, molecule in log:
        entry = composition.setdefault(molecule, [0, 0])
        entry[0 if species == "H" else 1] += 1
    return composition


class TestBonding:
    def test_single_molecule(self, fifo_kernel):
        factory = WaterFactory(fifo_kernel)
        log = []
        fifo_kernel.spawn(hydrogen(factory, log))
        fifo_kernel.spawn(hydrogen(factory, log, delay=0.1))
        fifo_kernel.spawn(oxygen(factory, log, delay=0.2))
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert factory.molecules == 1
        assert molecule_composition(log) == {0: [2, 1]}
        assert factory.banked == (0, 0)

    def test_incomplete_molecule_blocks(self, fifo_kernel):
        factory = WaterFactory(fifo_kernel)
        log = []
        fifo_kernel.spawn(hydrogen(factory, log))
        fifo_kernel.spawn(hydrogen(factory, log))
        result = fifo_kernel.run()  # no oxygen: both hydrogens park
        assert result.deadlocked
        assert log == []
        assert factory.banked == (2, 0)

    def test_surplus_atoms_stay_banked(self, fifo_kernel):
        factory = WaterFactory(fifo_kernel)
        log = []
        for __ in range(5):
            fifo_kernel.spawn(hydrogen(factory, log))
        fifo_kernel.spawn(oxygen(factory, log))
        result = fifo_kernel.run()
        assert factory.molecules == 1
        assert len([entry for entry in log if entry[0] == "H"]) == 2
        assert factory.banked == (3, 0)
        assert result.deadlocked  # three hydrogens still parked

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_every_molecule_is_2h_1o(self, seed):
        kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
        factory = WaterFactory(kernel, history=HistoryDatabase())
        log = []
        for index in range(12):
            kernel.spawn(hydrogen(factory, log, delay=0.01 * (index % 5)))
        for index in range(6):
            kernel.spawn(oxygen(factory, log, delay=0.015 * (index % 4)))
        kernel.run(until=30)
        kernel.raise_failures()
        assert factory.molecules == 6
        composition = molecule_composition(log)
        assert len(composition) == 6
        assert all(tuple(parts) == (2, 1) for parts in composition.values())


class TestWithDetection:
    def test_clean_run_report_free(self):
        kernel = SimKernel(RandomPolicy(seed=7), on_deadlock="stop")
        factory = WaterFactory(kernel, history=HistoryDatabase())
        detector = FaultDetector(
            factory, DetectorConfig(interval=0.3, tmax=20.0, tio=20.0)
        )
        log = []
        for index in range(8):
            kernel.spawn(hydrogen(factory, log, delay=0.02 * index))
        for index in range(4):
            kernel.spawn(oxygen(factory, log, delay=0.03 * index))
        kernel.spawn(detector_process(detector), "detector")
        kernel.run(until=30)
        kernel.raise_failures()
        assert factory.molecules == 4
        assert detector.clean, [str(r) for r in detector.reports]


class TestSweep:
    def test_composition_invariant_across_schedules(self):
        def build(kernel):
            factory = WaterFactory(kernel)
            log = []
            for index in range(8):
                kernel.spawn(hydrogen(factory, log, delay=0.01 * (index % 3)))
            for index in range(4):
                kernel.spawn(oxygen(factory, log, delay=0.02 * (index % 2)))
            return (factory, log)

        def check(kernel, context):
            factory, log = context
            if factory.molecules != 4:
                return f"expected 4 molecules, got {factory.molecules}"
            composition = molecule_composition(log)
            bad = {
                molecule: parts
                for molecule, parts in composition.items()
                if tuple(parts) != (2, 1)
            }
            if bad:
                return f"malformed molecules: {bad}"
            return None

        result = explore_seeds(build, check, seeds=range(30), until=100)
        assert result.all_passed, result.failures
