"""Tests for the sleeping-barber and cyclic-barrier monitors."""

import pytest

from repro.apps import BarberShop, CyclicBarrier
from repro.kernel import Delay, RandomPolicy, SimKernel


def barber_loop(shop):
    while True:
        yield from shop.next_customer()
        yield Delay(0.1)
        yield from shop.finish_cut()


class TestBarberShop:
    def test_invalid_chairs(self, kernel):
        with pytest.raises(ValueError):
            BarberShop(kernel, chairs=0)

    def test_all_customers_accounted_for(self, kernel):
        shop = BarberShop(kernel, chairs=2)
        results = []

        def customer(i):
            yield Delay(0.05 * i)
            served = yield from shop.get_haircut()
            results.append(served)

        kernel.spawn(barber_loop(shop), "barber")
        for i in range(8):
            kernel.spawn(customer(i), f"c{i}")
        kernel.run(until=60)
        assert len(results) == 8
        haircuts = sum(1 for served in results if served)
        assert haircuts == shop.served
        assert (8 - haircuts) == shop.balked
        assert haircuts >= 1

    def test_burst_overflows_chairs(self, fifo_kernel):
        shop = BarberShop(fifo_kernel, chairs=1)

        def customer():
            served = yield from shop.get_haircut()
            return served

        fifo_kernel.spawn(barber_loop(shop), "barber")
        # Five simultaneous arrivals into one chair: most must balk.
        for __ in range(5):
            fifo_kernel.spawn(customer())
        fifo_kernel.run(until=30)
        assert shop.balked >= 1
        assert shop.served + shop.balked == 5

    def test_quiet_shop_barber_sleeps(self, kernel):
        shop = BarberShop(kernel, chairs=2)
        kernel.spawn(barber_loop(shop), "barber")
        result = kernel.run(until=5)
        assert shop.served == 0
        assert not result.quiesced  # barber parked on 'customers'


class TestCyclicBarrier:
    def test_invalid_parties(self, kernel):
        with pytest.raises(ValueError):
            CyclicBarrier(kernel, 1)

    @pytest.mark.parametrize("seed", [0, 9])
    def test_rounds_complete_in_lockstep(self, seed):
        kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
        barrier = CyclicBarrier(kernel, parties=4)
        generations = []

        def party(i):
            for __ in range(3):
                yield Delay(0.1 * (i + 1))
                generation = yield from barrier.await_barrier()
                generations.append(generation)

        for i in range(4):
            kernel.spawn(party(i))
        kernel.run(until=60)
        kernel.raise_failures()
        assert barrier.generation == 3
        assert sorted(generations) == [0] * 4 + [1] * 4 + [2] * 4

    def test_nobody_crosses_early(self, fifo_kernel):
        barrier = CyclicBarrier(fifo_kernel, parties=3)
        crossed = []

        def party(i, delay):
            yield Delay(delay)
            yield from barrier.await_barrier()
            crossed.append((i, fifo_kernel.now()))

        fifo_kernel.spawn(party(0, 0.1))
        fifo_kernel.spawn(party(1, 0.5))
        fifo_kernel.spawn(party(2, 2.0))
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        # nobody crossed before the last arrival at t=2.0
        assert all(time >= 2.0 for __, time in crossed)
        assert len(crossed) == 3

    def test_barrier_is_reusable(self, fifo_kernel):
        barrier = CyclicBarrier(fifo_kernel, parties=2)

        def party():
            for __ in range(5):
                yield from barrier.await_barrier()

        fifo_kernel.spawn(party())
        fifo_kernel.spawn(party())
        fifo_kernel.run(max_steps=100_000)
        fifo_kernel.raise_failures()
        assert barrier.generation == 5
