"""Tests for the fork-table monitor and the deadlock-prone protocol."""

import pytest

from repro.apps import ForkTable, philosopher
from repro.apps.dining_philosophers import greedy_philosopher
from repro.apps.resource_allocator import SingleResourceAllocator
from repro.kernel import RandomPolicy, SimKernel


class TestForkTable:
    def test_invalid_seats(self, kernel):
        with pytest.raises(ValueError):
            ForkTable(kernel, seats=1)

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_all_philosophers_eat(self, seed):
        kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
        table = ForkTable(kernel, seats=5)
        for seat in range(5):
            kernel.spawn(philosopher(table, seat, meals=4), f"phil-{seat}")
        result = kernel.run(until=200, max_steps=5_000_000)
        kernel.raise_failures()
        assert not result.deadlocked
        assert table.meals == (4, 4, 4, 4, 4)

    def test_neighbours_never_eat_together(self, kernel):
        table = ForkTable(kernel, seats=5)
        violations = []

        def checked(seat):
            from repro.kernel import Delay

            for __ in range(3):
                yield Delay(0.1)
                yield from table.pick_up(seat)
                left = table._left(seat)
                right = table._right(seat)
                if table._state[left] == 2 or table._state[right] == 2:
                    violations.append(seat)
                yield Delay(0.1)
                yield from table.put_down(seat)

        for seat in range(5):
            kernel.spawn(checked(seat))
        kernel.run(until=100)
        kernel.raise_failures()
        assert violations == []


class TestGreedyProtocolDeadlocks:
    def test_left_then_right_deadlocks(self):
        """Five greedy philosophers over fork allocators form the classic
        circular wait; the kernel detects the global deadlock."""
        kernel = SimKernel(on_deadlock="stop")  # FIFO makes the cycle certain
        forks = [
            SingleResourceAllocator(kernel, name=f"fork{i}") for i in range(5)
        ]
        for seat in range(5):
            kernel.spawn(
                greedy_philosopher(forks, seat, meals=3, think=0.1),
                f"greedy-{seat}",
            )
        result = kernel.run(until=300)
        assert result.deadlocked
        # every fork is held and every philosopher still hungry
        meals_possible = [fork.grants for fork in forks]
        assert all(grants >= 1 for grants in meals_possible)
