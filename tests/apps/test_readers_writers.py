"""Tests for the readers-writers allocator monitor."""

import pytest

from repro.apps import ReadersWriters
from repro.kernel import Delay, RandomPolicy, SimKernel


def reader(rw, rounds, think, violations):
    for __ in range(rounds):
        yield Delay(think)
        yield from rw.start_read()
        if rw.writing:
            violations.append("reader-during-write")
        yield Delay(0.02)
        yield from rw.end_read()


def writer(rw, rounds, think, violations):
    for __ in range(rounds):
        yield Delay(think)
        yield from rw.start_write()
        if rw.active_readers > 0:
            violations.append("writer-during-read")
        yield Delay(0.03)
        yield from rw.end_write()


class TestExclusion:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_no_reader_writer_overlap(self, seed):
        kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
        rw = ReadersWriters(kernel)
        violations = []
        for i in range(4):
            kernel.spawn(reader(rw, 6, 0.03 * (i + 1), violations))
        for i in range(2):
            kernel.spawn(writer(rw, 4, 0.07 * (i + 1), violations))
        kernel.run(until=60)
        kernel.raise_failures()
        assert violations == []
        assert rw.reads_served == 24
        assert rw.writes_served == 8
        assert rw.active_readers == 0
        assert not rw.writing

    def test_readers_share(self, fifo_kernel):
        rw = ReadersWriters(fifo_kernel)
        concurrency = []

        def observer_reader(i):
            yield Delay(0.01 * i)
            yield from rw.start_read()
            concurrency.append(rw.active_readers)
            yield Delay(1.0)
            yield from rw.end_read()

        for i in range(3):
            fifo_kernel.spawn(observer_reader(i))
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert max(concurrency) == 3  # all three read simultaneously


class TestWriterPriority:
    def test_new_readers_defer_to_waiting_writer(self, fifo_kernel):
        rw = ReadersWriters(fifo_kernel)
        order = []

        def long_reader():
            yield from rw.start_read()
            yield Delay(1.0)
            yield from rw.end_read()

        def waiting_writer():
            yield Delay(0.2)
            yield from rw.start_write()
            order.append("writer")
            yield from rw.end_write()

        def late_reader():
            yield Delay(0.4)  # arrives while the writer is queued
            yield from rw.start_read()
            order.append("late-reader")
            yield from rw.end_read()

        fifo_kernel.spawn(long_reader())
        fifo_kernel.spawn(waiting_writer())
        fifo_kernel.spawn(late_reader())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert order == ["writer", "late-reader"]
