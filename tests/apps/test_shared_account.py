"""Tests for the shared-account operation manager."""

import pytest

from repro.apps import SharedAccount
from repro.kernel import Delay, RandomPolicy, SimKernel


class TestValidation:
    def test_negative_initial_balance(self, kernel):
        with pytest.raises(ValueError):
            SharedAccount(kernel, -5)

    def test_nonpositive_deposit(self, kernel):
        account = SharedAccount(kernel, 10)

        def bad_deposit():
            yield from account.deposit(0)

        pid = kernel.spawn(bad_deposit())
        kernel.run(until=5)
        assert isinstance(kernel.failures()[pid], ValueError)

    def test_nonpositive_withdraw(self, kernel):
        account = SharedAccount(kernel, 10)

        def bad_withdraw():
            yield from account.withdraw(-3)

        pid = kernel.spawn(bad_withdraw())
        kernel.run(until=5)
        assert isinstance(kernel.failures()[pid], ValueError)


class TestSemantics:
    def test_withdraw_blocks_until_covered(self, kernel):
        account = SharedAccount(kernel, 0)
        log = []

        def withdrawer():
            yield from account.withdraw(30)
            log.append(("withdrew", kernel.now()))

        def depositor():
            for __ in range(3):
                yield Delay(1.0)
                yield from account.deposit(10)

        kernel.spawn(withdrawer())
        kernel.spawn(depositor())
        kernel.run()
        kernel.raise_failures()
        assert log and log[0][1] >= 3.0
        assert account.balance == 0

    def test_balance_never_negative(self):
        kernel = SimKernel(RandomPolicy(seed=23), on_deadlock="stop")
        account = SharedAccount(kernel, 20)
        observed = []

        def watcher():
            for __ in range(100):
                observed.append(account.balance)
                yield Delay(0.1)

        def depositor():
            for __ in range(10):
                yield Delay(0.25)
                yield from account.deposit(7)

        def withdrawer(amount):
            for __ in range(5):
                yield Delay(0.4)
                yield from account.withdraw(amount)

        kernel.spawn(watcher())
        kernel.spawn(depositor())
        kernel.spawn(withdrawer(9))
        kernel.spawn(withdrawer(6))
        kernel.run(until=30)
        kernel.raise_failures()
        assert all(balance >= 0 for balance in observed)

    def test_cascade_serves_multiple_waiters_from_one_deposit(self, fifo_kernel):
        account = SharedAccount(fifo_kernel, 0)
        served = []

        def withdrawer(tag, amount):
            yield from account.withdraw(amount)
            served.append(tag)

        def depositor():
            yield Delay(1.0)
            yield from account.deposit(30)

        fifo_kernel.spawn(withdrawer("a", 10))
        fifo_kernel.spawn(withdrawer("b", 10))
        fifo_kernel.spawn(withdrawer("c", 10))
        fifo_kernel.spawn(depositor())
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert sorted(served) == ["a", "b", "c"]
        assert account.balance == 0
        assert account.withdrawals == 3
