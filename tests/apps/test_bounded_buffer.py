"""Tests for the bounded-buffer communication coordinator."""

import pytest

from repro.apps import BoundedBuffer, BufferIntegrityFault
from repro.history import HistoryDatabase
from repro.kernel import Delay, RandomPolicy, SimKernel
from tests.conftest import consumer, producer


class TestBasics:
    def test_invalid_capacity(self, kernel):
        with pytest.raises(ValueError):
            BoundedBuffer(kernel, capacity=0)

    def test_invalid_service_time(self, kernel):
        with pytest.raises(ValueError):
            BoundedBuffer(kernel, capacity=1, service_time=-1)

    def test_fifo_delivery(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=3)
        received = []
        kernel.spawn(producer(buffer, 20))
        kernel.spawn(consumer(buffer, 20, received))
        kernel.run()
        kernel.raise_failures()
        assert received == list(range(20))

    def test_occupancy_bounded_by_capacity(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2)
        peaks = []

        def watcher():
            for __ in range(100):
                peaks.append(buffer.occupancy)
                yield Delay(0.03)

        kernel.spawn(producer(buffer, 15, delay=0.01))
        kernel.spawn(consumer(buffer, 15, delay=0.09))
        kernel.spawn(watcher())
        kernel.run(until=3)
        assert all(0 <= peak <= 2 for peak in peaks)

    def test_resource_count_is_free_slots(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=4)
        assert buffer.resource_count() == 4

        def fill():
            yield from buffer.send(1)
            yield from buffer.send(2)

        kernel.spawn(fill())
        kernel.run()
        kernel.raise_failures()
        assert buffer.resource_count() == 2
        assert buffer.occupancy == 2


class TestBlockingBehaviour:
    def test_receiver_blocks_on_empty(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2)
        log = []

        def eager_receiver():
            item = yield from buffer.receive()
            log.append(item)

        def slow_sender():
            yield Delay(1.0)
            yield from buffer.send("late")

        kernel.spawn(eager_receiver())
        kernel.spawn(slow_sender())
        result = kernel.run()
        kernel.raise_failures()
        assert log == ["late"]
        assert result.end_time >= 1.0

    def test_sender_blocks_on_full(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=1)
        order = []

        def sender():
            yield from buffer.send(1)
            order.append("sent-1")
            yield from buffer.send(2)
            order.append("sent-2")

        def late_receiver():
            yield Delay(1.0)
            yield from buffer.receive()
            order.append("received")

        kernel.spawn(sender())
        kernel.spawn(late_receiver())
        kernel.run()
        kernel.raise_failures()
        assert order == ["sent-1", "received", "sent-2"]

    def test_many_producers_consumers_conserve_items(self):
        kernel = SimKernel(RandomPolicy(seed=13), on_deadlock="stop")
        buffer = BoundedBuffer(kernel, capacity=5, service_time=0.01)
        received = []
        for __ in range(3):
            kernel.spawn(producer(buffer, 30, delay=0.02))
        for __ in range(3):
            kernel.spawn(consumer(buffer, 30, received, delay=0.02))
        kernel.run(until=60)
        kernel.raise_failures()
        assert len(received) == 90
        assert sorted(received) == sorted(list(range(30)) * 3)


class TestIntegrityFaultVariants:
    """The buggy variants must actually misbehave (campaign preconditions)."""

    def test_send_ignores_full_overwrites(self, kernel):
        buffer = BoundedBuffer(
            kernel,
            capacity=1,
            integrity_fault=BufferIntegrityFault.SEND_IGNORES_FULL,
        )

        def sender():
            yield from buffer.send("a")
            yield from buffer.send("b")  # would block on a correct buffer

        kernel.spawn(sender())
        result = kernel.run()
        kernel.raise_failures()
        assert result.quiesced
        assert buffer.occupancy == 1  # "a" was clobbered

    def test_receive_ignores_empty_fabricates(self, kernel):
        buffer = BoundedBuffer(
            kernel,
            capacity=1,
            integrity_fault=BufferIntegrityFault.RECEIVE_IGNORES_EMPTY,
        )
        got = []

        def receiver():
            item = yield from buffer.receive()
            got.append(item)

        kernel.spawn(receiver())
        result = kernel.run()
        kernel.raise_failures()
        assert result.quiesced
        assert got == [None]

    def test_spurious_send_delay_blocks_on_nonfull_buffer(self, kernel):
        buffer = BoundedBuffer(
            kernel,
            capacity=3,
            history=HistoryDatabase(retain_full_trace=True),
            integrity_fault=BufferIntegrityFault.SEND_SPURIOUS_DELAY,
        )

        def sender():
            yield from buffer.send("x")

        kernel.spawn(sender())
        result = kernel.run()
        assert result.deadlocked  # nothing will ever signal "full"
        waits = [e for e in buffer.history.full_trace if e.is_wait]
        assert len(waits) == 1
        assert waits[0].cond == "full"
