"""Tests for the resource-access-right allocators."""

import pytest

from repro.apps import CountingResourceAllocator, SingleResourceAllocator
from repro.kernel import Delay, RandomPolicy, SimKernel


class TestSingleAllocator:
    def test_exclusive_holding(self, kernel):
        allocator = SingleResourceAllocator(kernel)
        violations = []

        def user(i):
            for __ in range(4):
                yield Delay(0.05 * (i + 1))
                yield from allocator.request()
                if allocator.holder != kernel.current_pid():
                    violations.append(i)
                yield Delay(0.1)
                yield from allocator.release()

        for i in range(4):
            kernel.spawn(user(i))
        kernel.run()
        kernel.raise_failures()
        assert violations == []
        assert allocator.grants == 16
        assert not allocator.busy
        assert allocator.holder is None

    def test_fifo_granting(self, fifo_kernel):
        allocator = SingleResourceAllocator(fifo_kernel)
        grants = []

        def holder():
            yield from allocator.request()
            yield Delay(1.0)
            yield from allocator.release()

        def waiter(i):
            yield Delay(0.1 * (i + 1))
            yield from allocator.request()
            grants.append(i)
            yield from allocator.release()

        fifo_kernel.spawn(holder())
        for i in range(3):
            fifo_kernel.spawn(waiter(i))
        fifo_kernel.run()
        fifo_kernel.raise_failures()
        assert grants == [0, 1, 2]

    def test_declaration_shape(self, kernel):
        allocator = SingleResourceAllocator(kernel)
        decl = allocator.declaration
        assert decl.call_order == "(Request ; Release)*"
        assert decl.acquire_procedures == ("Request",)
        assert decl.release_procedures == ("Release",)


class TestCountingAllocator:
    def test_invalid_units(self, kernel):
        with pytest.raises(ValueError):
            CountingResourceAllocator(kernel, 0)

    def test_concurrent_holders_bounded_by_units(self):
        kernel = SimKernel(RandomPolicy(seed=17), on_deadlock="stop")
        allocator = CountingResourceAllocator(kernel, units=3)
        holding = []
        peak = []

        def user(i):
            for __ in range(3):
                yield Delay(0.03 * (i + 1))
                yield from allocator.request()
                holding.append(i)
                peak.append(len(holding))
                yield Delay(0.2)
                holding.remove(i)
                yield from allocator.release()

        for i in range(7):
            kernel.spawn(user(i))
        kernel.run(until=60)
        kernel.raise_failures()
        assert max(peak) == 3
        assert allocator.available == 3
        assert allocator.grants == 21

    def test_all_units_usable(self, kernel):
        allocator = CountingResourceAllocator(kernel, units=2)

        def taker():
            yield from allocator.request()

        kernel.spawn(taker())
        kernel.spawn(taker())
        kernel.run()
        kernel.raise_failures()
        assert allocator.available == 0
