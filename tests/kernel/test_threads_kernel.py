"""Tests for the real-thread kernel.

Thread interleavings are nondeterministic; these tests assert only
schedule-independent properties (completion, counts, mutual exclusion).
"""

import pytest

from repro.errors import KernelError, UnknownProcessError
from repro.kernel import (
    Block,
    Delay,
    KernelSemaphore,
    ProcessState,
    Spawn,
    ThreadKernel,
    Yield,
)

# Compress virtual seconds aggressively: these workloads only sleep.
FAST = 0.002


class TestLifecycle:
    def test_processes_complete(self):
        kernel = ThreadKernel(time_scale=FAST)
        done = []

        def body(i):
            yield Delay(0.1)
            done.append(i)

        for i in range(4):
            kernel.spawn(body(i))
        result = kernel.run()
        kernel.raise_failures()
        assert sorted(done) == [0, 1, 2, 3]
        assert result.quiesced

    def test_return_value_and_state(self):
        kernel = ThreadKernel(time_scale=FAST)

        def body():
            yield Delay(0.01)
            return "ok"

        pid = kernel.spawn(body())
        kernel.run()
        record = kernel.process(pid)
        assert record.state is ProcessState.TERMINATED
        assert record.result == "ok"

    def test_exception_captured(self):
        kernel = ThreadKernel(time_scale=FAST)

        def crasher():
            yield Delay(0.01)
            raise RuntimeError("thread boom")

        pid = kernel.spawn(crasher())
        kernel.run()
        assert isinstance(kernel.process(pid).failure, RuntimeError)

    def test_unknown_pid(self):
        with pytest.raises(UnknownProcessError):
            ThreadKernel().process(12345)

    def test_invalid_time_scale(self):
        with pytest.raises(ValueError):
            ThreadKernel(time_scale=0)


class TestPrimitives:
    def test_block_and_make_ready(self):
        kernel = ThreadKernel(time_scale=FAST)
        log = []

        def waiter():
            value = yield Block(reason="x")
            log.append(value)

        pid = kernel.spawn(waiter())

        def waker():
            yield Delay(0.2)
            kernel.make_ready(pid, value=99)

        kernel.spawn(waker())
        kernel.run()
        kernel.raise_failures()
        assert log == [99]

    def test_spawn_syscall(self):
        kernel = ThreadKernel(time_scale=FAST)
        seen = []

        def child():
            yield Delay(0.01)
            seen.append("child")

        def parent():
            pid = yield Spawn(child, name="kid")
            seen.append(("spawned", pid > 0))

        kernel.spawn(parent())
        kernel.run()
        kernel.raise_failures()
        assert ("spawned", True) in seen
        assert "child" in seen

    def test_yield_is_harmless(self):
        kernel = ThreadKernel(time_scale=FAST)

        def body():
            for __ in range(5):
                yield Yield()

        kernel.spawn(body())
        result = kernel.run()
        kernel.raise_failures()
        assert result.quiesced

    def test_semaphore_mutual_exclusion_on_threads(self):
        kernel = ThreadKernel(time_scale=FAST)
        sem = KernelSemaphore(kernel, 1)
        inside = []
        violations = []

        def body(i):
            for __ in range(5):
                yield from sem.acquire()
                inside.append(i)
                if len(inside) > 1:
                    violations.append(list(inside))
                yield Delay(0.01)
                inside.remove(i)
                sem.release()

        for i in range(4):
            kernel.spawn(body(i))
        kernel.run()
        kernel.raise_failures()
        assert violations == []

    def test_current_pid_outside_process(self):
        with pytest.raises(KernelError):
            ThreadKernel().current_pid()

    def test_now_uses_virtual_units(self):
        kernel = ThreadKernel(time_scale=FAST)

        def body():
            yield Delay(1.0)  # one virtual second = 2 real ms

        kernel.spawn(body())
        kernel.run()
        assert kernel.now() >= 1.0
        # With scale 0.002 the virtual clock races far ahead of real time,
        # so a 1 s virtual delay must not have taken ~1 real second.
        assert kernel.now() < 500.0
