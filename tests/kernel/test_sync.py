"""Unit tests for the kernel-level semaphore."""

import pytest

from repro.kernel import Delay, KernelSemaphore, RandomPolicy, SimKernel


class TestConstruction:
    def test_initial_value(self):
        kernel = SimKernel()
        assert KernelSemaphore(kernel, 3).value == 3

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            KernelSemaphore(SimKernel(), -1)


class TestAcquireRelease:
    def test_uncontended_acquire(self):
        kernel = SimKernel()
        sem = KernelSemaphore(kernel, 1)
        done = []

        def body():
            yield from sem.acquire()
            done.append(True)
            sem.release()

        kernel.spawn(body())
        kernel.run()
        kernel.raise_failures()
        assert done == [True]
        assert sem.value == 1

    def test_mutual_exclusion_under_contention(self):
        kernel = SimKernel(RandomPolicy(seed=4))
        sem = KernelSemaphore(kernel, 1)
        inside = []
        max_inside = []

        def body(i):
            for __ in range(5):
                yield Delay(0.05 * (i + 1))
                yield from sem.acquire()
                inside.append(i)
                max_inside.append(len(inside))
                yield Delay(0.1)
                inside.remove(i)
                sem.release()

        for i in range(5):
            kernel.spawn(body(i))
        kernel.run()
        kernel.raise_failures()
        assert max(max_inside) == 1

    def test_counting_semaphore_allows_n(self):
        kernel = SimKernel()
        sem = KernelSemaphore(kernel, 3)
        peak = {"value": 0, "current": 0}

        def body():
            yield from sem.acquire()
            peak["current"] += 1
            peak["value"] = max(peak["value"], peak["current"])
            yield Delay(1.0)
            peak["current"] -= 1
            sem.release()

        for __ in range(6):
            kernel.spawn(body())
        kernel.run()
        kernel.raise_failures()
        assert peak["value"] == 3

    def test_fifo_handoff_order(self):
        kernel = SimKernel()
        sem = KernelSemaphore(kernel, 1)
        order = []

        def holder():
            yield from sem.acquire()
            yield Delay(1.0)
            sem.release()

        def waiter(i):
            yield Delay(0.1 * (i + 1))
            yield from sem.acquire()
            order.append(i)
            sem.release()

        kernel.spawn(holder())
        for i in range(4):
            kernel.spawn(waiter(i))
        kernel.run()
        kernel.raise_failures()
        assert order == [0, 1, 2, 3]


class TestTryAcquire:
    def test_try_acquire_success_and_failure(self):
        kernel = SimKernel()
        sem = KernelSemaphore(kernel, 1)
        results = []

        def body():
            results.append(sem.try_acquire())
            results.append(sem.try_acquire())
            sem.release()
            results.append(sem.try_acquire())
            return
            yield

        kernel.spawn(body())
        kernel.run()
        kernel.raise_failures()
        assert results == [True, False, True]


class TestIntrospection:
    def test_waiters_snapshot(self):
        kernel = SimKernel()
        sem = KernelSemaphore(kernel, 1, name="mx")
        observed = []

        def holder():
            yield from sem.acquire()
            yield Delay(1.0)
            observed.append(sem.waiters)
            sem.release()

        def waiter():
            yield Delay(0.1)
            yield from sem.acquire()
            sem.release()

        kernel.spawn(holder())
        pid = kernel.spawn(waiter())
        kernel.run()
        kernel.raise_failures()
        assert observed == [(pid,)]

    def test_repr_mentions_name(self):
        sem = KernelSemaphore(SimKernel(), 2, name="pool")
        assert "pool" in repr(sem)
