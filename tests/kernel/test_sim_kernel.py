"""Unit tests for the deterministic simulation kernel."""

import pytest

from repro.errors import (
    KernelError,
    ProcessStateError,
    SchedulerStalled,
    SimulationDeadlock,
    UnknownProcessError,
)
from repro.kernel import (
    Block,
    Delay,
    LifoPolicy,
    ProcessState,
    RandomPolicy,
    SimKernel,
    Spawn,
    Yield,
)


def noop():
    return
    yield


def sleeper(duration):
    yield Delay(duration)


class TestLifecycle:
    def test_spawn_assigns_increasing_pids(self):
        kernel = SimKernel()
        assert kernel.spawn(noop()) == 1
        assert kernel.spawn(noop()) == 2

    def test_run_terminates_processes(self):
        kernel = SimKernel()
        pid = kernel.spawn(noop())
        result = kernel.run()
        assert result.quiesced
        assert pid in result.terminated
        assert kernel.process(pid).state is ProcessState.TERMINATED

    def test_return_value_captured(self):
        def body():
            yield Delay(0.1)
            return 42

        kernel = SimKernel()
        pid = kernel.spawn(body())
        kernel.run()
        assert kernel.process(pid).result == 42

    def test_exception_marks_failed(self):
        def crasher():
            yield Delay(0.1)
            raise RuntimeError("boom")

        kernel = SimKernel()
        pid = kernel.spawn(crasher())
        result = kernel.run()
        assert pid in result.failed
        record = kernel.process(pid)
        assert record.state is ProcessState.FAILED
        assert isinstance(record.failure, RuntimeError)
        with pytest.raises(RuntimeError, match="boom"):
            kernel.raise_failures()

    def test_unknown_pid_rejected(self):
        with pytest.raises(UnknownProcessError):
            SimKernel().process(99)

    def test_failures_mapping(self):
        def crasher():
            raise ValueError("x")
            yield

        kernel = SimKernel()
        pid = kernel.spawn(crasher())
        kernel.run()
        assert set(kernel.failures()) == {pid}


class TestTime:
    def test_delay_advances_virtual_time(self):
        kernel = SimKernel()
        kernel.spawn(sleeper(2.5))
        result = kernel.run()
        assert result.end_time == 2.5

    def test_parallel_delays_interleave(self):
        order = []

        def body(name, duration):
            yield Delay(duration)
            order.append(name)

        kernel = SimKernel()
        kernel.spawn(body("late", 2.0))
        kernel.spawn(body("early", 1.0))
        kernel.run()
        assert order == ["early", "late"]

    def test_until_stops_early(self):
        def forever():
            while True:
                yield Delay(1.0)

        kernel = SimKernel()
        kernel.spawn(forever())
        result = kernel.run(until=5.5)
        assert result.end_time <= 5.5
        assert not result.quiesced

    def test_step_cost_advances_time(self):
        def spinner():
            for __ in range(10):
                yield Yield()

        kernel = SimKernel(step_cost=0.1)
        kernel.spawn(spinner())
        result = kernel.run()
        assert result.end_time == pytest.approx(1.1)

    def test_negative_step_cost_rejected(self):
        with pytest.raises(ValueError):
            SimKernel(step_cost=-1)


class TestBlocking:
    def test_block_then_make_ready(self):
        log = []

        def waiter():
            value = yield Block(reason="test")
            log.append(value)

        def waker(pid):
            yield Delay(1.0)
            kernel.make_ready(pid, value="hello")

        kernel = SimKernel()
        pid = kernel.spawn(waiter())
        kernel.spawn(waker(pid))
        kernel.run()
        assert log == ["hello"]

    def test_sticky_permit_prevents_lost_wakeup(self):
        log = []

        def early_waker(pid):
            kernel.make_ready(pid, value="early")
            return
            yield

        def late_blocker():
            # Stay READY for one scheduler round so the wake-up arrives
            # before we block; the permit must be remembered.
            yield Yield()
            value = yield Block()
            log.append(value)

        kernel = SimKernel()
        pid = kernel.spawn(late_blocker())
        kernel.spawn(early_waker(pid))
        kernel.run()
        kernel.raise_failures()
        assert log == ["early"]

    def test_double_wake_rejected(self):
        def blocker():
            yield Delay(10.0)
            yield Block()

        kernel = SimKernel()
        pid = kernel.spawn(blocker())

        def double_waker():
            kernel.make_ready(pid)
            kernel.make_ready(pid)
            return
            yield

        kernel.spawn(double_waker())
        kernel.run(until=1.0)
        failures = kernel.failures()
        assert len(failures) == 1
        assert isinstance(next(iter(failures.values())), ProcessStateError)

    def test_waking_delay_sleeper_rejected(self):
        kernel = SimKernel()
        pid = kernel.spawn(sleeper(5.0))

        def waker():
            yield Delay(1.0)
            kernel.make_ready(pid)

        kernel.spawn(waker())
        kernel.run()
        failures = kernel.failures()
        assert len(failures) == 1

    def test_force_wake_cancels_delay(self):
        kernel = SimKernel()
        pid = kernel.spawn(sleeper(100.0))

        def waker():
            yield Delay(1.0)
            kernel.make_ready(pid, force=True)

        kernel.spawn(waker())
        result = kernel.run()
        kernel.raise_failures()
        assert result.quiesced
        assert result.end_time == 1.0

    def test_waking_dead_process_rejected(self):
        kernel = SimKernel()
        pid = kernel.spawn(noop())
        kernel.run()
        with pytest.raises(ProcessStateError):
            kernel.make_ready(pid)


class TestDeadlock:
    def test_deadlock_raises_by_default(self):
        def stuck():
            yield Block(reason="forever")

        kernel = SimKernel()
        kernel.spawn(stuck())
        with pytest.raises(SimulationDeadlock):
            kernel.run()

    def test_deadlock_stop_mode_flags_result(self):
        def stuck():
            yield Block(reason="forever")

        kernel = SimKernel(on_deadlock="stop")
        kernel.spawn(stuck())
        result = kernel.run()
        assert result.deadlocked
        assert not result.quiesced

    def test_forgotten_process_not_deadlock(self):
        def stuck():
            yield Block(reason="lost")

        kernel = SimKernel()
        pid = kernel.spawn(stuck())

        def forgetter():
            yield Delay(0.1)
            kernel.forget(pid)

        kernel.spawn(forgetter())
        result = kernel.run()
        assert not result.deadlocked
        assert pid in result.live

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SimKernel(on_deadlock="explode")


class TestMisc:
    def test_spawn_syscall(self):
        children = []

        def child():
            yield Delay(0.5)

        def parent():
            pid = yield Spawn(child, name="kid")
            children.append(pid)

        kernel = SimKernel()
        kernel.spawn(parent())
        result = kernel.run()
        assert len(children) == 1
        assert kernel.process(children[0]).name == "kid"
        assert result.quiesced

    def test_non_syscall_yield_fails_process(self):
        def bad():
            yield "not a syscall"

        kernel = SimKernel()
        pid = kernel.spawn(bad())
        kernel.run()
        assert isinstance(kernel.process(pid).failure, KernelError)

    def test_current_pid_outside_step_raises(self):
        with pytest.raises(KernelError):
            SimKernel().current_pid()

    def test_current_pid_inside_step(self):
        seen = []

        def body():
            seen.append(kernel.current_pid())
            return
            yield

        kernel = SimKernel()
        pid = kernel.spawn(body())
        kernel.run()
        assert seen == [pid]

    def test_max_steps_raises_stalled(self):
        def spinner():
            while True:
                yield Yield()

        kernel = SimKernel()
        kernel.spawn(spinner())
        with pytest.raises(SchedulerStalled):
            kernel.run(max_steps=100)

    def test_atomic_is_passthrough(self):
        kernel = SimKernel()
        assert kernel.atomic(lambda: 7) == 7

    def test_lifo_policy_changes_order(self):
        order_fifo, order_lifo = [], []

        def body(sink, tag):
            sink.append(tag)
            return
            yield

        k1 = SimKernel()
        for tag in "abc":
            k1.spawn(body(order_fifo, tag))
        k1.run()
        k2 = SimKernel(policy=LifoPolicy())
        for tag in "abc":
            k2.spawn(body(order_lifo, tag))
        k2.run()
        assert order_fifo == ["a", "b", "c"]
        assert order_lifo == ["c", "b", "a"]

    def test_seeded_runs_reproduce_exactly(self):
        def trace_run(seed):
            trace = []

            def body(tag):
                for __ in range(5):
                    yield Delay(0.1)
                    trace.append(tag)

            kern = SimKernel(RandomPolicy(seed=seed))
            for tag in "abcd":
                kern.spawn(body(tag))
            kern.run()
            return trace

        assert trace_run(11) == trace_run(11)
