"""Tests for the seed-exploration harness."""

import pytest

from repro.apps import BoundedBuffer, SingleResourceAllocator
from repro.apps.dining_philosophers import greedy_philosopher
from repro.kernel import Delay
from repro.kernel.explore import explore_seeds
from tests.conftest import consumer, producer


class TestCleanWorkloads:
    def test_buffer_invariant_across_seeds(self):
        def build(kernel):
            buffer = BoundedBuffer(kernel, capacity=2, service_time=0.01)
            kernel.spawn(producer(buffer, 10, delay=0.02))
            kernel.spawn(consumer(buffer, 10, delay=0.03))
            return buffer

        def check(kernel, buffer):
            if buffer.occupancy != 0:
                return f"buffer not drained: {buffer.occupancy}"
            if not buffer.monitor.core.idle:
                return "monitor not idle at quiescence"
            return None

        result = explore_seeds(build, check, seeds=range(30))
        assert result.all_passed, result.failures
        assert result.seeds_run == 30
        assert "OK" in result.summary()


class TestFailureDetection:
    def test_check_failures_are_collected_with_seed(self):
        def build(kernel):
            return {}

        def check(kernel, context):
            return "always wrong"

        result = explore_seeds(build, check, seeds=range(5))
        assert len(result.failures) == 5
        assert [failure.seed for failure in result.failures] == list(range(5))
        assert not result.all_passed
        assert "FAILED" in result.summary()

    def test_stop_after_bounds_collection(self):
        result = explore_seeds(
            lambda kernel: None,
            lambda kernel, ctx: "bad",
            seeds=range(100),
            stop_after=3,
        )
        assert len(result.failures) == 3
        assert result.seeds_run == 3

    def test_process_crash_reported(self):
        def build(kernel):
            def crasher():
                yield Delay(0.1)
                raise RuntimeError("boom")

            kernel.spawn(crasher())
            return None

        result = explore_seeds(build, lambda k, c: None, seeds=range(3))
        assert len(result.failures) == 3
        assert "boom" in result.failures[0].reason


class TestDeadlockHandling:
    def _greedy_build(self, kernel):
        forks = [SingleResourceAllocator(kernel, name=f"f{i}") for i in range(5)]
        for seat in range(5):
            kernel.spawn(greedy_philosopher(forks, seat, meals=2, think=0.05))
        return forks

    def test_deadlock_counts_as_failure_by_default(self):
        result = explore_seeds(
            self._greedy_build, lambda k, c: None, seeds=range(5), until=60
        )
        # The greedy protocol deadlocks under (at least) most schedules.
        assert result.deadlocked_seeds
        assert result.failures

    def test_allow_deadlock_tolerates_it(self):
        result = explore_seeds(
            self._greedy_build,
            lambda k, c: None,
            seeds=range(5),
            until=60,
            allow_deadlock=True,
        )
        assert result.deadlocked_seeds
        assert result.all_passed
