"""Unit tests for scheduling policies."""

import pytest

from repro.kernel.policies import (
    FifoPolicy,
    LifoPolicy,
    RandomPolicy,
    make_policy,
)


class TestFifo:
    def test_chooses_head(self):
        assert FifoPolicy().choose([3, 1, 2]) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FifoPolicy().choose([])


class TestLifo:
    def test_chooses_tail(self):
        assert LifoPolicy().choose([3, 1, 2]) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LifoPolicy().choose([])


class TestRandom:
    def test_deterministic_under_seed(self):
        ready = list(range(10))
        a = [RandomPolicy(seed=7).choose(ready) for __ in range(1)]
        b = [RandomPolicy(seed=7).choose(ready) for __ in range(1)]
        assert a == b

    def test_sequence_reproducible(self):
        ready = list(range(10))
        p1, p2 = RandomPolicy(seed=3), RandomPolicy(seed=3)
        seq1 = [p1.choose(ready) for __ in range(50)]
        seq2 = [p2.choose(ready) for __ in range(50)]
        assert seq1 == seq2

    def test_different_seeds_differ(self):
        ready = list(range(10))
        seq1 = [RandomPolicy(seed=1).choose(ready) for __ in range(1)]
        p2 = RandomPolicy(seed=2)
        # Not guaranteed different on one draw; compare longer sequences.
        p1 = RandomPolicy(seed=1)
        assert [p1.choose(ready) for __ in range(50)] != [
            p2.choose(ready) for __ in range(50)
        ]

    def test_fork_restarts_sequence(self):
        ready = list(range(8))
        policy = RandomPolicy(seed=5)
        original = [policy.choose(ready) for __ in range(20)]
        forked = policy.fork()
        assert [forked.choose(ready) for __ in range(20)] == original

    def test_choice_is_member(self):
        policy = RandomPolicy(seed=0)
        ready = [10, 20, 30]
        for __ in range(100):
            assert policy.choose(ready) in ready

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RandomPolicy().choose([])


class TestMakePolicy:
    def test_default_is_fifo(self):
        assert isinstance(make_policy(None), FifoPolicy)
        assert isinstance(make_policy("fifo"), FifoPolicy)

    def test_named_policies(self):
        assert isinstance(make_policy("lifo"), LifoPolicy)
        assert isinstance(make_policy("random", seed=9), RandomPolicy)
        assert make_policy("random", seed=9).seed == 9

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("round-robin")


class TestScripted:
    def test_follows_script_exactly(self):
        from repro.kernel.policies import ScriptedPolicy

        policy = ScriptedPolicy([2, 1, 3])
        ready = [1, 2, 3]
        assert policy.choose(ready) == 2
        assert policy.choose(ready) == 1
        assert policy.choose(ready) == 3
        assert policy.exhausted
        assert policy.misses == []

    def test_falls_back_to_fifo_after_script(self):
        from repro.kernel.policies import ScriptedPolicy

        policy = ScriptedPolicy([2])
        assert policy.choose([1, 2]) == 2
        assert policy.choose([1, 3]) == 1  # script done: FIFO

    def test_records_misses(self):
        from repro.kernel.policies import ScriptedPolicy

        policy = ScriptedPolicy([9, 2])
        assert policy.choose([1, 2]) == 2  # 9 not ready: skipped, recorded
        assert policy.misses == [(0, 9)]

    def test_empty_ready_rejected(self):
        from repro.kernel.policies import ScriptedPolicy

        with pytest.raises(ValueError):
            ScriptedPolicy([1]).choose([])

    def test_drives_exact_interleaving(self):
        from repro.kernel import SimKernel, Yield
        from repro.kernel.policies import ScriptedPolicy

        order = []

        def body(tag):
            order.append(tag)
            yield Yield()
            order.append(tag)

        # pids are 1, 2; script forces 2 to run both segments first
        policy = ScriptedPolicy([2, 2, 1, 1])
        kernel = SimKernel(policy=policy)
        kernel.spawn(body("a"))  # pid 1
        kernel.spawn(body("b"))  # pid 2
        kernel.run()
        kernel.raise_failures()
        assert order == ["b", "b", "a", "a"]
        assert policy.misses == []
