"""Unit tests for the virtual clock and timer wheel."""

import pytest

from repro.kernel.clock import VirtualClock


class TestBasics:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=5.5).now == 5.5

    def test_no_timers_initially(self):
        clock = VirtualClock()
        assert not clock.has_timers
        assert clock.next_deadline() is None

    def test_advance_to_next_without_timers_raises(self):
        with pytest.raises(RuntimeError):
            VirtualClock().advance_to_next()


class TestScheduling:
    def test_schedule_sets_deadline(self):
        clock = VirtualClock()
        timer = clock.schedule(2.0, "a")
        assert timer.deadline == 2.0
        assert clock.next_deadline() == 2.0
        assert clock.has_timers

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().schedule(-1.0, "x")

    def test_zero_delay_allowed(self):
        clock = VirtualClock()
        clock.schedule(0.0, "now")
        assert clock.next_deadline() == 0.0

    def test_advance_to_next_moves_time_and_pops(self):
        clock = VirtualClock()
        clock.schedule(1.0, "a")
        clock.schedule(2.0, "b")
        expired = clock.advance_to_next()
        assert clock.now == 1.0
        assert [t.payload for t in expired] == ["a"]
        expired = clock.advance_to_next()
        assert clock.now == 2.0
        assert [t.payload for t in expired] == ["b"]

    def test_simultaneous_timers_expire_in_registration_order(self):
        clock = VirtualClock()
        clock.schedule(1.0, "first")
        clock.schedule(1.0, "second")
        clock.schedule(1.0, "third")
        expired = clock.advance_to_next()
        assert [t.payload for t in expired] == ["first", "second", "third"]

    def test_deadlines_computed_relative_to_now(self):
        clock = VirtualClock()
        clock.schedule(1.0, "a")
        clock.advance_to_next()
        timer = clock.schedule(1.0, "b")
        assert timer.deadline == 2.0


class TestCancellation:
    def test_cancelled_timer_never_expires(self):
        clock = VirtualClock()
        keep = clock.schedule(1.0, "keep")
        drop = clock.schedule(1.0, "drop")
        clock.cancel(drop)
        expired = clock.advance_to_next()
        assert [t.payload for t in expired] == ["keep"]

    def test_cancelling_all_timers_empties_the_clock(self):
        clock = VirtualClock()
        timer = clock.schedule(1.0, "x")
        clock.cancel(timer)
        assert not clock.has_timers
        assert clock.next_deadline() is None


class TestPopDue:
    def test_pop_due_empty_before_deadline(self):
        clock = VirtualClock()
        clock.schedule(1.0, "a")
        assert clock.pop_due() == []

    def test_pop_due_after_advance(self):
        clock = VirtualClock()
        clock.schedule(1.0, "a")
        clock.schedule(1.5, "b")
        clock.advance_capped(1.2)
        # advance_capped stops at the 1.0 deadline
        assert clock.now == 1.0
        assert [t.payload for t in clock.pop_due()] == ["a"]

    def test_pop_due_returns_all_elapsed(self):
        clock = VirtualClock()
        clock.schedule(0.0, "a")
        clock.schedule(0.0, "b")
        assert [t.payload for t in clock.pop_due()] == ["a", "b"]


class TestAdvance:
    def test_advance_capped_free_run(self):
        clock = VirtualClock()
        advanced = clock.advance_capped(3.0)
        assert advanced == 3.0
        assert clock.now == 3.0

    def test_advance_capped_stops_at_deadline(self):
        clock = VirtualClock()
        clock.schedule(1.0, "a")
        advanced = clock.advance_capped(5.0)
        assert advanced == 1.0
        assert clock.now == 1.0

    def test_advance_by_refuses_to_skip_timer(self):
        clock = VirtualClock()
        clock.schedule(1.0, "a")
        with pytest.raises(RuntimeError):
            clock.advance_by(2.0)

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance_by(-0.1)
        with pytest.raises(ValueError):
            clock.advance_capped(-0.1)
