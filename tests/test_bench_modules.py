"""Tests for the benchmark harness modules themselves."""

import pytest

from repro.bench.coverage import coverage_table, run_coverage
from repro.bench.overhead import (
    FleetOverheadRow,
    OverheadRow,
    fleet_rows_to_json,
    measure_fleet_overhead,
    measure_overhead,
    overhead_table,
    render_fleet_table,
    render_overhead_table,
)
from repro.bench.tables import render_table
from repro.workloads import WorkloadSpec

FAST_SPEC = WorkloadSpec(processes=2, operations=10, think_time=0.05)


class TestTables:
    def test_render_alignment(self):
        text = render_table(
            ["name", "value"], [["a", 1], ["longer-name", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_render_without_title(self):
        text = render_table(["x"], [["1"]])
        assert text.splitlines()[0] == "x"


class TestOverheadHarness:
    def test_measure_produces_consistent_row(self):
        row = measure_overhead(
            "coordinator", 1.0, backend="sim", spec=FAST_SPEC, repeats=1
        )
        assert isinstance(row, OverheadRow)
        assert row.scenario == "coordinator"
        assert row.interval == 1.0
        assert row.base_seconds > 0
        assert row.extended_seconds > 0
        assert row.events > 0
        assert row.ratio == pytest.approx(
            (row.extended_seconds + row.checking_seconds) / row.base_seconds
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            measure_overhead("coordinator", 1.0, backend="quantum")

    def test_grid_covers_all_cells(self):
        rows = overhead_table(
            intervals=(1.0,),
            scenarios=("coordinator", "manager"),
            backend="sim",
            spec=FAST_SPEC,
            repeats=1,
        )
        assert {(row.scenario, row.interval) for row in rows} == {
            ("coordinator", 1.0),
            ("manager", 1.0),
        }

    def test_render_layout(self):
        rows = overhead_table(
            intervals=(1.0,),
            scenarios=("coordinator",),
            backend="sim",
            spec=FAST_SPEC,
            repeats=1,
        )
        text = render_overhead_table(rows)
        assert "Table 1" in text
        assert "coordinator" in text
        assert "T=1s" in text


class TestFleetHarness:
    @pytest.fixture(scope="class")
    def rows(self):
        return measure_fleet_overhead(2, backend="sim", spec=FAST_SPEC, repeats=1)

    def test_paired_rows_same_workload(self, rows):
        assert [row.mode for row in rows] == ["incremental", "full"]
        incremental, full = rows
        assert isinstance(incremental, FleetOverheadRow)
        # Identical seeded workload and checkpoint schedule on both sides.
        assert incremental.events == full.events
        assert incremental.checkpoints == full.checkpoints
        assert incremental.events > 0
        assert incremental.evaluate_seconds > 0

    def test_mode_counters(self, rows):
        incremental, full = rows
        assert incremental.incremental_hits > 0
        assert full.incremental_hits == 0
        assert full.incremental_rebases == 0
        assert incremental.staged_flushes > 0

    def test_render_and_json(self, rows):
        text = render_fleet_table(rows)
        assert "incremental" in text and "full" in text
        payload = fleet_rows_to_json(rows, backend="sim")
        assert payload["bench"] == "overhead-fleet"
        modes = [row["mode"] for row in payload["rows"]]
        assert modes == ["incremental", "full"]


class TestCoverageHarness:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return run_coverage(seed=0)

    def test_all_classes_present(self, outcomes):
        from repro.detection import FaultClass

        assert set(outcomes) == set(FaultClass)

    def test_table_renders_each_class(self, outcomes):
        text = coverage_table(outcomes)
        assert "I.a.1" in text
        assert "III.c" in text
        assert "21/21" in text


class TestAblationsHarness:
    def test_st_vs_fd_table(self):
        from repro.bench.ablations import ablation_st_vs_fd

        text = ablation_st_vs_fd()
        assert "verdicts agree" in text
        assert "NO" not in text.splitlines()[2]  # clean row agrees

    def test_pruning_table(self):
        from repro.bench.ablations import ablation_pruning

        text = ablation_pruning(sizes=(30, 60))
        assert "pruned window peak" in text

    def test_interval_accuracy_table(self):
        from repro.bench.ablations import ablation_interval_accuracy

        text = ablation_interval_accuracy(intervals=(0.5, 2.0))
        assert "detection latency" in text
        assert "nan" not in text


class TestTableValidation:
    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row 0"):
            render_table(["a", "b"], [["only-one"]])
