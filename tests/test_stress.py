"""Scale tests: the machinery must stay well-behaved on larger runs.

These guard against accidental quadratic blowups in the kernel's ready
queue, the history database or the checking-list replay — sizes are chosen
to finish in a couple of seconds while being an order of magnitude above
the rest of the suite.
"""

import pytest

from repro.apps import BoundedBuffer, CountingResourceAllocator
from repro.detection import DetectorConfig, FaultDetector, detector_process
from repro.history import HistoryDatabase
from repro.kernel import Delay, RandomPolicy, SimKernel
from tests.conftest import consumer, producer


def test_large_buffer_workload_with_detection():
    kernel = SimKernel(RandomPolicy(seed=2), on_deadlock="stop")
    history = HistoryDatabase()
    buffer = BoundedBuffer(
        kernel, capacity=8, history=history, service_time=0.001
    )
    detector = FaultDetector(
        buffer, DetectorConfig(interval=1.0, tmax=100.0, tio=100.0)
    )
    pairs = 8
    items = 250
    for __ in range(pairs):
        kernel.spawn(producer(buffer, items, delay=0.01))
        kernel.spawn(consumer(buffer, items, delay=0.01))
    kernel.spawn(detector_process(detector), "detector")
    kernel.run(until=500, max_steps=10_000_000)
    kernel.raise_failures()
    assert detector.clean
    # 2 pairs x items ops x ~2+ events each
    assert history.total_recorded >= pairs * items * 2 * 2
    assert buffer.occupancy == 0


def test_many_processes_on_counting_allocator():
    kernel = SimKernel(RandomPolicy(seed=4), on_deadlock="stop")
    allocator = CountingResourceAllocator(
        kernel, units=5, history=HistoryDatabase()
    )
    detector = FaultDetector(
        allocator, DetectorConfig(interval=1.0, tlimit=200.0)
    )
    users = 40

    def user(index):
        for __ in range(20):
            yield Delay(0.01 * (index % 7 + 1))
            yield from allocator.request()
            yield Delay(0.02)
            yield from allocator.release()

    for index in range(users):
        kernel.spawn(user(index))
    kernel.spawn(detector_process(detector), "detector")
    kernel.run(until=500, max_steps=10_000_000)
    kernel.raise_failures()
    assert detector.clean
    assert allocator.grants == users * 20
    assert allocator.available == 5


def test_history_pruning_keeps_long_run_bounded():
    kernel = SimKernel(RandomPolicy(seed=6), on_deadlock="stop")
    history = HistoryDatabase()
    buffer = BoundedBuffer(kernel, capacity=4, history=history)
    detector = FaultDetector(
        buffer, DetectorConfig(interval=0.5, tmax=None, tio=None)
    )
    kernel.spawn(producer(buffer, 2000, delay=0.01))
    kernel.spawn(consumer(buffer, 2000, delay=0.01))
    kernel.spawn(detector_process(detector), "detector")
    kernel.run(until=100, max_steps=10_000_000)
    kernel.raise_failures()
    assert history.total_recorded >= 8000
    # live window stays tiny relative to the whole run
    assert history.peak_live_events < history.total_recorded / 10
