"""Unit tests for TriggeredHooks."""

import pytest

from repro.errors import InjectionError
from repro.history.events import enter_event
from repro.injection.hooks import PERTURBATIONS, TriggeredHooks


class TestValidation:
    def test_unknown_perturbation_rejected(self):
        with pytest.raises(InjectionError):
            TriggeredHooks("explode_everything")

    def test_starve_victim_requires_victim(self):
        with pytest.raises(InjectionError):
            TriggeredHooks("starve_victim")

    def test_all_names_documented(self):
        for name in PERTURBATIONS:
            if name == "starve_victim":
                TriggeredHooks(name, victim=1)
            else:
                TriggeredHooks(name)


class TestFiring:
    def test_fires_exactly_once_at_fire_at(self):
        hooks = TriggeredHooks("enter_despite_owner", fire_at=3)
        results = [
            hooks.enter_admit_despite_owner(pid, "Op") for pid in range(1, 6)
        ]
        assert results == [False, False, True, False, False]
        assert hooks.fired == 1
        assert hooks.affected == [3]

    def test_other_hooks_stay_correct(self):
        hooks = TriggeredHooks("enter_despite_owner")
        assert not hooks.wait_no_block(1, "c")
        assert not hooks.sigexit_fake_resume(1, "c")
        assert not hooks.admission_suppressed("wait")
        assert hooks.should_record(enter_event(0, 1, "Op", 0.0, 1))

    def test_origin_filter(self):
        hooks = TriggeredHooks("suppress_admission", origin="wait")
        assert not hooks.admission_suppressed("signal-exit")
        assert hooks.admission_suppressed("wait")

    def test_origin_none_matches_all(self):
        hooks = TriggeredHooks("suppress_admission")
        assert hooks.admission_suppressed("signal-exit")

    def test_starve_victim_is_persistent(self):
        hooks = TriggeredHooks("starve_victim", victim=7)
        assert hooks.admission_skip_victim(7)
        assert hooks.admission_skip_victim(7)
        assert not hooks.admission_skip_victim(8)
        assert hooks.fired == 2
        assert hooks.affected == [7]

    def test_suppress_enter_record_targets_successful_enters(self):
        hooks = TriggeredHooks("suppress_enter_record", fire_at=2)
        blocked = enter_event(0, 1, "Op", 0.0, 0)
        ok1 = enter_event(1, 2, "Op", 0.1, 1)
        ok2 = enter_event(2, 3, "Op", 0.2, 1)
        assert hooks.should_record(blocked)   # flag=0: not an opportunity
        assert hooks.should_record(ok1)       # first opportunity: recorded
        assert not hooks.should_record(ok2)   # second: suppressed
        assert hooks.affected == [3]

    def test_core_gate_blocks_empty_queue_opportunities(self):
        class FakeCore:
            entry_pids = ()

        hooks = TriggeredHooks("admit_extra")
        hooks.core = FakeCore()
        assert not hooks.admission_admit_extra("wait")
        assert hooks.fired == 0
        FakeCore.entry_pids = (5,)
        assert hooks.admission_admit_extra("wait")
        assert hooks.fired == 1


class TestPerturbationCoverage:
    def test_every_perturbation_used_by_some_campaign(self):
        """The perturbation vocabulary and the campaign table must not
        drift apart: each named perturbation is exercised somewhere."""
        import inspect

        from repro.injection import campaigns

        source = inspect.getsource(campaigns)
        unused = [
            name
            for name in PERTURBATIONS
            if f'"{name}"' not in source
        ]
        # Campaigns construct TriggeredHooks by name; drop_enter etc. all
        # appear literally in the campaign table.
        assert unused == [], f"perturbations without campaigns: {unused}"
