"""Chaos-hardening acceptance: the supervised engine must survive a full
seeded campaign of transient checkpoint failures, injected delays, history
drop-bursts and a sabotaged evaluator — without crashing the kernel,
without a single CONFIRMED report on the fault-free workload, and with the
broken monitor's breaker completing a full quarantine lifecycle.
"""

import dataclasses

import pytest

from repro.detection import BreakerState, DetectionEngine, DetectorConfig
from repro.errors import InjectionError
from repro.history import HistoryDatabase
from repro.injection import (
    ChaosConfig,
    ChaosError,
    run_chaos_campaign,
    sabotage_entry,
)
from repro.apps import SingleResourceAllocator
from repro.kernel import RandomPolicy, SimKernel


class TestCampaignAcceptance:
    def test_default_campaign_passes(self):
        result = run_chaos_campaign(seed=0, rounds=60)
        assert result.passed, result.summary()

    def test_fifty_consecutive_checkpoints_no_crash_no_confirmed(self):
        result = run_chaos_campaign(seed=0, rounds=60)
        assert result.checkpoints_completed >= 50
        assert result.checkpoints_abandoned == 0
        assert result.kernel_failures == ()
        assert result.confirmed_reports == 0

    def test_chaos_was_actually_injected(self):
        result = run_chaos_campaign(seed=0, rounds=60)
        assert result.failures_injected > 0
        assert result.delays_injected > 0
        assert result.events_dropped > 0
        assert result.evaluator_failures_raised > 0
        # Lossy windows really happened and were handled as degraded.
        assert result.degraded_windows > 0

    def test_breaker_lifecycle_completes(self):
        result = run_chaos_campaign(seed=0, rounds=60)
        assert result.breaker_opened >= 1
        assert result.breaker_reclosed >= 1
        assert result.breaker_final_state is BreakerState.CLOSED
        # While quarantined, the broken monitor was skipped, not checked.
        assert result.broken_checkpoints_skipped > 0
        # The rest of the fleet never stopped checking.
        assert all(
            n == result.checkpoints_completed
            for n in result.healthy_checkpoints
        )

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_other_seeds_also_pass(self, seed):
        result = run_chaos_campaign(seed=seed, rounds=60)
        assert result.passed, result.summary()

    def test_same_seed_is_reproducible(self):
        first = run_chaos_campaign(seed=3, rounds=60)
        second = run_chaos_campaign(seed=3, rounds=60)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_summary_mentions_verdict(self):
        result = run_chaos_campaign(seed=0, rounds=60)
        assert "PASS" in result.summary()


class TestChaosConfig:
    def test_defaults_are_valid(self):
        ChaosConfig()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("rounds", 0),
            ("interval", 0.0),
            ("checkpoint_failure_rate", 1.5),
            ("delay_rate", -0.1),
            ("drop_burst_rate", 2.0),
            ("burst_size", 0),
            ("evaluator_failures", 0),
            ("breaker_failure_threshold", 0),
            ("breaker_cooldown", 0.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(InjectionError):
            ChaosConfig(**{field: value})

    def test_config_and_overrides_are_mutually_exclusive(self):
        with pytest.raises(InjectionError):
            run_chaos_campaign(ChaosConfig(), seed=1)


class TestSabotage:
    def _entry(self):
        kernel = SimKernel(RandomPolicy(seed=0), on_deadlock="stop")
        allocator = SingleResourceAllocator(
            kernel, history=HistoryDatabase()
        )
        engine = DetectionEngine(kernel, DetectorConfig(interval=1.0))
        return engine.register(allocator)

    def test_raises_n_times_then_heals(self):
        entry = self._entry()
        wrapper = sabotage_entry(entry, failures=2)
        for __ in range(2):
            with pytest.raises(ChaosError):
                entry.check()
        assert wrapper.raised == 2
        assert wrapper.healed
        assert entry.check() == []  # delegates to the real checker again

    def test_rejects_nonpositive_failure_count(self):
        entry = self._entry()
        with pytest.raises(InjectionError):
            sabotage_entry(entry, failures=0)
