"""The robustness experiment as a test suite: every taxonomy entry, when
injected, must be activated AND detected (the paper's Section 4 claim).

These are the heaviest integration tests in the suite — each runs a full
workload with the detector attached.
"""

import pytest

from repro.detection.faults import FaultClass, FaultLevel
from repro.errors import UnknownCampaignError
from repro.injection.campaigns import CAMPAIGNS, run_all_campaigns, run_campaign


class TestCampaignTable:
    def test_every_fault_has_a_campaign(self):
        assert set(CAMPAIGNS) == set(FaultClass)

    def test_descriptions_and_rules_present(self):
        for campaign in CAMPAIGNS.values():
            assert campaign.description
            assert campaign.primary_rules

    def test_unknown_campaign_rejected(self):
        with pytest.raises(UnknownCampaignError):
            run_campaign("not-a-fault")  # type: ignore[arg-type]


@pytest.mark.parametrize("fault", list(FaultClass), ids=lambda f: f.label)
class TestEachFaultDetected:
    def test_activated_and_detected(self, fault):
        outcome = run_campaign(fault, seed=0)
        assert outcome.activated, f"{fault.label}: fault never manifested"
        assert outcome.detected, (
            f"{fault.label}: fault activated but no report implicates it "
            f"(rules fired: {outcome.rules})"
        )

    def test_primary_rule_fired(self, fault):
        outcome = run_campaign(fault, seed=0)
        primaries = set(CAMPAIGNS[fault].primary_rules)
        assert primaries & set(outcome.rules), (
            f"{fault.label}: none of the expected rules {sorted(primaries)} "
            f"fired (got {outcome.rules})"
        )


class TestAggregate:
    def test_full_coverage(self):
        outcomes = run_all_campaigns(seed=0)
        detected = sum(1 for o in outcomes.values() if o.detected)
        assert detected == len(FaultClass) == 21

    def test_outcome_summaries_render(self):
        outcome = run_campaign(FaultClass.RELEASE_BEFORE_REQUEST)
        text = outcome.summary()
        assert "III.a" in text
        assert "DETECTED" in text

    def test_realtime_faults_reported_by_realtime_rules(self):
        """Level-III faults must be caught by Algorithm-3's per-event rules,
        not only by periodic sweeps."""
        for fault in FaultClass.at_level(FaultLevel.USER_PROCESS):
            outcome = run_campaign(fault)
            assert any(rule.startswith("ST-8") for rule in outcome.rules)
