"""Seed robustness: the injection campaigns must not be schedule-brittle.

The paper injected faults "randomly"; our campaigns are deterministic per
seed, so detecting 21/21 under *different* seeds shows the detection does
not hinge on one lucky interleaving.
"""

import pytest

from repro.detection.faults import FaultClass
from repro.injection import run_all_campaigns


@pytest.mark.parametrize("seed", [1, 2])
def test_full_coverage_under_alternative_seeds(seed):
    outcomes = run_all_campaigns(seed=seed)
    missed = [
        outcome.fault.label
        for outcome in outcomes.values()
        if not outcome.detected
    ]
    assert not missed, f"seed {seed}: missed {missed}"
    assert len(outcomes) == len(FaultClass)
