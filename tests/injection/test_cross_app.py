"""Cross-application injection: level-I faults are app-independent.

The campaign table runs implementation-level faults against the bounded
buffer; detection must not depend on that choice.  Here the same
perturbations are injected into an *allocator* workload and into the
*shared account* (operation-manager) workload, and the detector must still
implicate the fault.
"""

import pytest

from repro.apps import SharedAccount, SingleResourceAllocator
from repro.detection import (
    DetectorConfig,
    FaultClass,
    FaultDetector,
    detector_process,
)
from repro.history import HistoryDatabase
from repro.injection import TriggeredHooks
from repro.kernel import Delay, RandomPolicy, SimKernel


def run_allocator_with(hooks, seed=0):
    kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    allocator = SingleResourceAllocator(
        kernel, history=HistoryDatabase(), hooks=hooks
    )
    hooks.core = allocator.monitor.core
    detector = FaultDetector(
        allocator, DetectorConfig(interval=0.3, tmax=5.0, tio=10.0, tlimit=None)
    )

    def user(index):
        for __ in range(6):
            yield Delay(0.02 * (index + 1))
            yield from allocator.request()
            yield Delay(0.1)
            yield from allocator.release()

    for index in range(4):
        kernel.spawn(user(index))
    kernel.spawn(detector_process(detector), "detector")
    kernel.run(until=25)
    return hooks, detector


def run_account_with(hooks, seed=0):
    kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    account = SharedAccount(kernel, 0, history=HistoryDatabase(), hooks=hooks)
    hooks.core = account.monitor.core
    detector = FaultDetector(
        account, DetectorConfig(interval=0.3, tmax=8.0, tio=10.0)
    )

    def depositor():
        for __ in range(15):
            yield Delay(0.08)
            yield from account.deposit(5)

    def withdrawer(amount):
        for __ in range(5):
            yield Delay(0.1)
            yield from account.withdraw(amount)

    kernel.spawn(depositor())
    kernel.spawn(withdrawer(10))
    kernel.spawn(withdrawer(5))
    kernel.spawn(detector_process(detector), "detector")
    kernel.run(until=25)
    return hooks, detector


class TestAllocatorHost:
    def test_fake_resume_detected(self):
        hooks, detector = run_allocator_with(TriggeredHooks("fake_resume"))
        assert hooks.fired == 1
        assert FaultClass.SIGEXIT_NO_RESUME in detector.implicated_faults()

    def test_hold_monitor_on_exit_detected(self):
        hooks, detector = run_allocator_with(
            TriggeredHooks("hold_monitor_on_exit")
        )
        assert hooks.fired == 1
        assert FaultClass.SIGEXIT_MONITOR_HELD in detector.implicated_faults()

    def test_wait_lose_caller_detected(self):
        hooks, detector = run_allocator_with(
            TriggeredHooks("wait_lose_caller")
        )
        assert hooks.fired == 1
        assert FaultClass.WAIT_CALLER_LOST in detector.implicated_faults()


class TestAccountHost:
    def test_fake_resume_detected(self):
        hooks, detector = run_account_with(TriggeredHooks("fake_resume"))
        assert hooks.fired == 1
        assert FaultClass.SIGEXIT_NO_RESUME in detector.implicated_faults()

    def test_wait_no_block_detected(self):
        hooks, detector = run_account_with(TriggeredHooks("wait_no_block"))
        assert hooks.fired == 1
        assert FaultClass.WAIT_NO_BLOCK in detector.implicated_faults()

    def test_suppress_enter_record_detected(self):
        hooks, detector = run_account_with(
            TriggeredHooks("suppress_enter_record", fire_at=3)
        )
        assert hooks.fired == 1
        assert FaultClass.ENTER_NOT_OBSERVED in detector.implicated_faults()
