"""Crash-recovery campaign: kill the detector, restart, compare fault sets."""

import pytest

from repro.errors import InjectionError
from repro.injection import (
    CrashPoint,
    CrashRecoveryConfig,
    run_crash_recovery_campaign,
)


class TestConfigValidation:
    def test_rejects_too_many_crashes(self):
        with pytest.raises(InjectionError):
            CrashRecoveryConfig(rounds=10, crashes=9)

    def test_rejects_unknown_backend(self):
        with pytest.raises(InjectionError):
            CrashRecoveryConfig(backend="processes")

    def test_rejects_empty_crash_points(self):
        with pytest.raises(InjectionError):
            CrashRecoveryConfig(crash_points=())

    def test_config_or_overrides_not_both(self):
        with pytest.raises(InjectionError):
            run_crash_recovery_campaign(CrashRecoveryConfig(), seed=1)


class TestSimCampaign:
    def test_default_campaign_passes_strict(self):
        result = run_crash_recovery_campaign(
            seed=0, rounds=30, crashes=3, backend="sim"
        )
        assert result.passed, result.summary()
        assert result.golden_reports > 0
        assert result.recovered_reports == result.golden_reports
        assert result.missing_keys == ()
        assert result.extra_keys == ()
        assert result.duplicate_keys == ()
        assert result.recoveries == 3

    def test_each_crash_point_recovers(self):
        # One campaign per point, so a regression names its culprit.
        for point in CrashPoint:
            result = run_crash_recovery_campaign(
                seed=11,
                rounds=20,
                crashes=2,
                backend="sim",
                crash_points=(point,),
            )
            assert result.passed, f"{point.value}:\n{result.summary()}"

    def test_torn_tails_are_truncated_on_recovery(self):
        result = run_crash_recovery_campaign(
            seed=2,
            rounds=20,
            crashes=2,
            backend="sim",
            crash_points=(CrashPoint.MID_WAL_APPEND,),
        )
        assert result.passed, result.summary()
        assert result.torn_tails_truncated == 2

    def test_summary_renders(self):
        result = run_crash_recovery_campaign(seed=1, rounds=16, crashes=1)
        text = result.summary()
        assert "crash-recovery campaign" in text
        assert ("PASS" in text) == result.passed


class TestThreadCampaign:
    def test_relaxed_comparison_passes_on_threads(self):
        result = run_crash_recovery_campaign(
            seed=0, rounds=20, crashes=2, backend="threads", operations=10
        )
        assert result.passed, result.summary()
