"""Unit tests for the exception hierarchy and report rendering."""

import pytest

from repro import errors
from repro.detection.faults import FaultClass
from repro.detection.reports import FaultReport
from repro.detection.rules import FDRule, STRule


class TestExceptionHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.ReproError), name

    def test_kernel_family(self):
        assert issubclass(errors.SimulationDeadlock, errors.KernelError)
        assert issubclass(errors.SchedulerStalled, errors.KernelError)
        assert issubclass(errors.ProcessStateError, errors.KernelError)

    def test_monitor_family(self):
        assert issubclass(errors.NotInsideMonitorError, errors.MonitorUsageError)
        assert issubclass(errors.UnknownConditionError, errors.MonitorUsageError)
        assert issubclass(errors.MonitorUsageError, errors.MonitorError)

    def test_simulation_deadlock_message(self):
        exc = errors.SimulationDeadlock((3, 5), 2.5)
        assert "P3" in str(exc) and "P5" in str(exc)
        assert "t=2.5" in str(exc)
        assert exc.blocked_pids == (3, 5)

    def test_path_expression_error_carries_position(self):
        exc = errors.PathExpressionSyntaxError("bad", 4, "a ; *")
        assert exc.position == 4
        assert exc.source == "a ; *"
        assert "position 4" in str(exc)


class TestFaultReport:
    def make(self, **overrides):
        base = dict(
            rule=STRule.ONE_INSIDE,
            message="two inside",
            monitor="buffer",
            detected_at=1.5,
            pids=(1, 2),
        )
        base.update(overrides)
        return FaultReport(**base)

    def test_rule_id(self):
        assert self.make().rule_id == "ST-3a"
        assert self.make(rule=FDRule.NONTERMINATION).rule_id == "FD-2"

    def test_suspected_faults_from_mapping(self):
        report = self.make()
        assert FaultClass.ENTER_MUTEX_VIOLATED in report.suspected_faults
        assert report.implicates(FaultClass.ENTER_MUTEX_VIOLATED)
        assert not report.implicates(FaultClass.RELEASE_BEFORE_REQUEST)

    def test_render_contains_core_fields(self):
        text = self.make().render()
        assert "ST-3a" in text
        assert "buffer" in text
        assert "P1,P2" in text
        assert "two inside" in text
        assert str(self.make()) == self.make().render()

    def test_render_without_pids(self):
        text = self.make(pids=()).render()
        assert "pids=-" in text

    def test_reports_are_immutable(self):
        report = self.make()
        with pytest.raises(AttributeError):
            report.message = "changed"


class TestIds:
    def test_aliases(self):
        from repro.ids import NO_PID, Cond, Pid, Pname

        assert NO_PID == -1
        assert Pid is int
        assert Pname is str and Cond is str


class TestPublicApi:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
