"""Tests for the benchmark workload scenarios."""

import pytest

from repro.history import HistoryDatabase
from repro.kernel import RandomPolicy, SimKernel
from repro.workloads import SCENARIOS, WorkloadSpec, build_scenario


class TestRegistry:
    def test_three_scenarios_matching_monitor_types(self):
        assert set(SCENARIOS) == {"coordinator", "allocator", "manager"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            build_scenario("bogus", SimKernel(), None)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestEachScenario:
    def test_runs_clean_without_history(self, name):
        kernel = SimKernel(RandomPolicy(seed=1), on_deadlock="stop")
        spec = WorkloadSpec(processes=4, operations=10)
        run = build_scenario(name, kernel, None, spec)
        assert run.monitor.history is None
        run.spawn_all(kernel)
        result = kernel.run(until=200, max_steps=2_000_000)
        kernel.raise_failures()
        assert result.quiesced

    def test_records_history_when_attached(self, name):
        kernel = SimKernel(RandomPolicy(seed=1), on_deadlock="stop")
        history = HistoryDatabase()
        spec = WorkloadSpec(processes=4, operations=10)
        run = build_scenario(name, kernel, history, spec)
        run.spawn_all(kernel)
        kernel.run(until=200, max_steps=2_000_000)
        kernel.raise_failures()
        # every operation produces at least an Enter and an exit event
        assert history.total_recorded >= spec.total_operations

    def test_deterministic_given_seed(self, name):
        def run_once():
            kernel = SimKernel(RandomPolicy(seed=5), on_deadlock="stop")
            history = HistoryDatabase(retain_full_trace=True)
            spec = WorkloadSpec(processes=4, operations=8)
            run = build_scenario(name, kernel, history, spec)
            run.spawn_all(kernel)
            kernel.run(until=200, max_steps=2_000_000)
            kernel.raise_failures()
            return [
                (e.kind.value, e.pid, e.pname, e.flag)
                for e in history.full_trace
            ]

        assert run_once() == run_once()


class TestSpec:
    def test_total_operations(self):
        assert WorkloadSpec(processes=4, operations=25).total_operations == 100
