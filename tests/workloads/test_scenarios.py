"""Tests for the benchmark workload scenarios."""

import pytest

from repro.history import HistoryDatabase
from repro.kernel import RandomPolicy, SimKernel
from repro.workloads import SCENARIOS, WorkloadSpec, build_scenario


class TestRegistry:
    def test_three_scenarios_matching_monitor_types(self):
        assert set(SCENARIOS) == {"coordinator", "allocator", "manager"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            build_scenario("bogus", SimKernel(), None)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestEachScenario:
    def test_runs_clean_without_history(self, name):
        kernel = SimKernel(RandomPolicy(seed=1), on_deadlock="stop")
        spec = WorkloadSpec(processes=4, operations=10)
        run = build_scenario(name, kernel, None, spec)
        assert run.monitor.history is None
        run.spawn_all(kernel)
        result = kernel.run(until=200, max_steps=2_000_000)
        kernel.raise_failures()
        assert result.quiesced

    def test_records_history_when_attached(self, name):
        kernel = SimKernel(RandomPolicy(seed=1), on_deadlock="stop")
        history = HistoryDatabase()
        spec = WorkloadSpec(processes=4, operations=10)
        run = build_scenario(name, kernel, history, spec)
        run.spawn_all(kernel)
        kernel.run(until=200, max_steps=2_000_000)
        kernel.raise_failures()
        # every operation produces at least an Enter and an exit event
        assert history.total_recorded >= spec.total_operations

    def test_deterministic_given_seed(self, name):
        def run_once():
            kernel = SimKernel(RandomPolicy(seed=5), on_deadlock="stop")
            history = HistoryDatabase(retain_full_trace=True)
            spec = WorkloadSpec(processes=4, operations=8)
            run = build_scenario(name, kernel, history, spec)
            run.spawn_all(kernel)
            kernel.run(until=200, max_steps=2_000_000)
            kernel.raise_failures()
            return [
                (e.kind.value, e.pid, e.pname, e.flag)
                for e in history.full_trace
            ]

        assert run_once() == run_once()


class TestSpec:
    def test_total_operations(self):
        assert WorkloadSpec(processes=4, operations=25).total_operations == 100


class TestFleet:
    def test_builds_count_instances_round_robin(self):
        from repro.workloads import build_fleet

        kernel = SimKernel(RandomPolicy(seed=0), on_deadlock="stop")
        fleet = build_fleet(kernel, 7, WorkloadSpec(processes=2, operations=2))
        assert len(fleet) == 7
        names = [run.name for run in fleet]
        # all three scenario types are represented, cycling
        assert names[:3] == sorted(SCENARIOS)
        assert names[3:6] == sorted(SCENARIOS)
        # every instance has its own monitor and its own sink
        monitors = {id(run.monitor) for run in fleet}
        sinks = {id(run.monitor.history) for run in fleet}
        assert len(monitors) == len(sinks) == 7

    def test_sink_factory_and_validation(self):
        from repro.history import BoundedHistory
        from repro.workloads import build_fleet

        kernel = SimKernel(RandomPolicy(seed=0), on_deadlock="stop")
        fleet = build_fleet(
            kernel, 2, sink_factory=lambda: BoundedHistory(capacity=16)
        )
        assert all(isinstance(run.monitor.history, BoundedHistory) for run in fleet)
        with pytest.raises(ValueError):
            build_fleet(kernel, 0)
        with pytest.raises(ValueError):
            build_fleet(kernel, 2, names=["nope"])

    def test_fleet_runs_under_one_engine(self):
        from repro.detection import DetectionEngine, DetectorConfig, engine_process
        from repro.workloads import build_fleet

        kernel = SimKernel(RandomPolicy(seed=0), on_deadlock="stop")
        spec = WorkloadSpec(processes=2, operations=4)
        fleet = build_fleet(kernel, 4, spec)
        engine = DetectionEngine(
            kernel, DetectorConfig(interval=0.5, tmax=60.0, tio=60.0, tlimit=60.0)
        )
        for run in fleet:
            engine.register(run.monitor)
        for index, run in enumerate(fleet):
            run.spawn_all(kernel, prefix=f"m{index}-")
        kernel.spawn(engine_process(engine), "engine")
        kernel.run(until=30, max_steps=2_000_000)
        kernel.raise_failures()
        assert engine.clean
        assert engine.checkpoints_run > 0
        assert engine.atomic_sections == engine.checkpoints_run
