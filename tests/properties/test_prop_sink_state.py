"""Property tests: sink-state snapshots round-trip for every sink type.

The checkpoint supervisor and the durability layer both persist live sink
state via :func:`sink_state_to_dict` and rebuild it with
:func:`apply_sink_state`.  For arbitrary event streams and arbitrary ring
capacities, the restored sink must be observationally identical: same
pending window, same sequence counter, same drop accounting — and its
next cut must report the same losses (so degraded-mode confidence
survives a restart).
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.history import BoundedHistory, HistoryDatabase
from repro.history.serialize import apply_sink_state, sink_state_to_dict
from repro.history.states import SchedulingState
from tests.history.test_serialize import events_strategy


def blank_state(t=0.0):
    return SchedulingState(time=t, entry_queue=(), cond_queues={}, running=())


def fill(sink, events):
    sink.open(blank_state())
    for seq, event in enumerate(events):
        # Recorded seqs must be unique and increasing for replay parity.
        sink.record(dataclasses.replace(event, seq=seq))
    return sink


def assert_round_trips(sink, fresh):
    record = sink_state_to_dict(sink)
    fresh.open(blank_state())
    apply_sink_state(fresh, record)
    assert fresh.pending_events == sink.pending_events
    assert fresh.total_recorded == sink.total_recorded
    assert fresh.dropped_events == sink.dropped_events
    assert fresh.next_seq() == sink.next_seq()
    original_cut = sink.cut(blank_state(1e9))
    restored_cut = fresh.cut(blank_state(1e9))
    assert restored_cut.events == original_cut.events
    assert restored_cut.dropped == original_cut.dropped
    assert restored_cut.complete == original_cut.complete


class TestBoundedSinkStateProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        events=st.lists(events_strategy(), max_size=30),
        capacity=st.integers(1, 12),
    )
    def test_bounded_round_trip_any_stream(self, events, capacity):
        sink = fill(BoundedHistory(capacity), events)
        assert_round_trips(sink, BoundedHistory(capacity))

    @settings(max_examples=50, deadline=None)
    @given(events=st.lists(events_strategy(), max_size=30))
    def test_unbounded_round_trip_any_stream(self, events):
        sink = fill(HistoryDatabase(), events)
        assert_round_trips(sink, HistoryDatabase())

    @settings(max_examples=50, deadline=None)
    @given(
        events=st.lists(events_strategy(), min_size=5, max_size=30),
        capacity=st.integers(1, 4),
    )
    def test_pending_dropped_survives_restart(self, events, capacity):
        sink = fill(BoundedHistory(capacity), events)
        fresh = BoundedHistory(capacity)
        fresh.open(blank_state())
        apply_sink_state(fresh, sink_state_to_dict(sink))
        assert fresh.pending_dropped == sink.pending_dropped
