"""Differential property: incremental checking == full re-walk, byte for byte.

The incremental hot path (``DetectorConfig(incremental_checking=True)``,
the default) carries each monitor's checking lists across checkpoints so
phase-2 evaluation costs O(new events).  Its contract is that the emitted
report stream is *byte-identical* to the stateless oracle — a fresh replay
machine seeded from ``s_p`` every window
(``incremental_checking=False``).  These tests enforce the contract
differentially: every scenario runs twice on the same scheduling seed,
once per mode, and the two engines' report streams must compare equal —
including under forced sink drops (degraded windows + Algorithm-2
``resync``) and injected faults.

The sim kernel makes the pairing sound: evaluation is pure computation
with no feedback into the schedule, so same seed ⇒ same event stream on
both sides.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import BoundedBuffer
from repro.detection import DetectorConfig
from repro.detection.engine import DetectionEngine, engine_process
from repro.history import BoundedHistory, HistoryDatabase
from repro.injection import TriggeredHooks
from repro.kernel import RandomPolicy, SimKernel
from repro.workloads.scenarios import WorkloadSpec, build_fleet
from tests.conftest import consumer, producer


def run_fleet(
    seed: int,
    *,
    incremental: bool,
    count: int = 3,
    sink_factory=None,
    interval: float = 0.5,
    operations: int = 12,
    until: float = 60.0,
):
    """One seeded fleet run: build, detect, finish; return the engine."""
    kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    config = DetectorConfig(
        interval=interval,
        tmax=100.0,
        tio=100.0,
        tlimit=100.0,
        incremental_checking=incremental,
    )
    engine = DetectionEngine(kernel, config)
    spec = WorkloadSpec(operations=operations, seed=seed)
    fleet = build_fleet(kernel, count, spec, sink_factory=sink_factory)
    for run in fleet:
        engine.register(run.monitor)
        run.spawn_all(kernel)
    kernel.spawn(engine_process(engine), "engine")
    kernel.run(until=until, max_steps=5_000_000)
    kernel.raise_failures()
    return engine


def run_buffer_with_hooks(
    seed: int, *, incremental: bool, perturbation: str, fire_at: int
):
    """One seeded fault-injected buffer run under the batched engine."""
    kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    history = HistoryDatabase()
    hooks = TriggeredHooks(perturbation, fire_at=fire_at)
    buffer = BoundedBuffer(
        kernel, capacity=2, history=history, hooks=hooks, service_time=0.03
    )
    hooks.core = buffer.monitor.core
    config = DetectorConfig(
        interval=0.4, tmax=100.0, tio=100.0,
        incremental_checking=incremental,
    )
    engine = DetectionEngine(kernel, config)
    engine.register(buffer)
    for __ in range(2):
        kernel.spawn(producer(buffer, 15, delay=0.04))
        kernel.spawn(consumer(buffer, 15, delay=0.04))
    kernel.spawn(engine_process(engine), "engine")
    kernel.run(until=120, max_steps=5_000_000)
    kernel.raise_failures()
    return engine, hooks


def assert_equivalent(incremental: DetectionEngine, full: DetectionEngine):
    """The load-bearing comparison: identical report streams and windows."""
    assert incremental.reports == full.reports, (
        f"incremental diverged from the oracle:\n"
        f"  incremental: {[str(r) for r in incremental.reports]}\n"
        f"  oracle:      {[str(r) for r in full.reports]}"
    )
    assert incremental.reports_by_monitor().keys() == (
        full.reports_by_monitor().keys()
    )
    assert incremental.checkpoints_run == full.checkpoints_run
    assert incremental.dropped_events == full.dropped_events
    assert incremental.degraded_windows == full.degraded_windows
    # Mode bookkeeping: the oracle never touches the incremental counters,
    # the incremental engine accounts every window as a hit or a rebase.
    assert full.incremental_hits == 0
    assert full.incremental_rebases == 0
    windows = incremental.evaluations_run
    assert (
        incremental.incremental_hits + incremental.incremental_rebases
        == windows
    )


class TestCleanFleets:
    """Clean multi-monitor fleets: all three scenario/monitor classes."""

    @pytest.mark.parametrize("seed", range(10))
    def test_fleet_reports_match_oracle(self, seed):
        incremental = run_fleet(seed, incremental=True)
        full = run_fleet(seed, incremental=False)
        assert_equivalent(incremental, full)
        # The hot path must actually engage for the test to mean anything.
        assert incremental.incremental_hits > 0

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        count=st.integers(1, 4),
        interval=st.floats(0.2, 2.0),
    )
    def test_random_fleet_shapes_match_oracle(self, seed, count, interval):
        incremental = run_fleet(
            seed, incremental=True, count=count, interval=interval
        )
        full = run_fleet(
            seed, incremental=False, count=count, interval=interval
        )
        assert_equivalent(incremental, full)

    def test_idle_tail_takes_the_fast_path(self):
        # Run far past workload completion: the trailing checkpoints see
        # zero new events and verified-unchanged lists.
        incremental = run_fleet(3, incremental=True, until=200.0)
        full = run_fleet(3, incremental=False, until=200.0)
        assert_equivalent(incremental, full)
        assert incremental.incremental_fastpaths > 0


class TestDropsAndResync:
    """Lossy sinks: degraded windows, carried-list invalidation, resync."""

    @pytest.mark.parametrize("seed", range(8))
    def test_bounded_sink_drops_match_oracle(self, seed):
        def tiny_sink():
            return BoundedHistory(6)

        incremental = run_fleet(
            seed, incremental=True, sink_factory=tiny_sink, interval=1.0
        )
        full = run_fleet(
            seed, incremental=False, sink_factory=tiny_sink, interval=1.0
        )
        assert_equivalent(incremental, full)
        # These runs must actually be lossy, and the cumulative-counter
        # checker must have re-based, or the scenario tests nothing.
        assert incremental.dropped_events > 0
        resyncs = sum(
            entry.algorithm2.resyncs
            for entry in incremental.entries
            if entry.algorithm2 is not None
        )
        assert resyncs > 0


# Perturbations whose effects appear in the event sequence itself.
SEQUENCE_VISIBLE = (
    "enter_despite_owner",
    "wait_no_block",
    "fake_resume",
)


class TestInjectedFaults:
    """Fault-injected runs: both modes must report the same violations."""

    @pytest.mark.parametrize(
        "seed,perturbation",
        [(s, p) for s in (1, 2) for p in SEQUENCE_VISIBLE],
    )
    def test_fault_reports_match_oracle(self, seed, perturbation):
        incremental, hooks_a = run_buffer_with_hooks(
            seed, incremental=True, perturbation=perturbation, fire_at=2
        )
        full, hooks_b = run_buffer_with_hooks(
            seed, incremental=False, perturbation=perturbation, fire_at=2
        )
        assert hooks_a.fired == hooks_b.fired
        assert_equivalent(incremental, full)
        if hooks_a.fired:
            assert incremental.reports, (
                f"activated {perturbation} went undetected"
            )
