"""Property-based tests of the detection machinery on live workloads.

The two load-bearing properties of the paper's approach:

* **Soundness (no false positives):** on a *fault-free* execution, no rule
  fires — for any workload shape, scheduling seed and checking interval.
* **ST/FD agreement:** the windowed checkpoint checker and the offline
  full-trace FD checker agree on whether an injected implementation-level
  fault occurred.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import BoundedBuffer, SingleResourceAllocator
from repro.detection import (
    DetectorConfig,
    FaultDetector,
    check_full_trace,
    detector_process,
)
from repro.history import HistoryDatabase
from repro.injection import TriggeredHooks
from repro.kernel import Delay, RandomPolicy, SimKernel
from tests.conftest import consumer, producer


def run_buffer(
    *,
    seed: int,
    producers: int,
    consumers_n: int,
    capacity: int,
    items: int,
    interval: float,
    service: float,
    hooks=None,
):
    kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    history = HistoryDatabase(retain_full_trace=True)
    buffer = BoundedBuffer(
        kernel,
        capacity=capacity,
        history=history,
        hooks=hooks,
        service_time=service,
    )
    if hooks is not None:
        hooks.core = buffer.monitor.core
    detector = FaultDetector(
        buffer, DetectorConfig(interval=interval, tmax=100.0, tio=100.0)
    )
    for __ in range(producers):
        kernel.spawn(producer(buffer, items, delay=0.04))
    for __ in range(consumers_n):
        kernel.spawn(consumer(buffer, items, delay=0.04))
    kernel.spawn(detector_process(detector), "detector")
    kernel.run(until=120, max_steps=5_000_000)
    return kernel, buffer, history, detector


class TestNoFalsePositives:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        pairs=st.integers(1, 3),
        capacity=st.integers(1, 6),
        interval=st.floats(0.1, 3.0),
        service=st.sampled_from([0.0, 0.01, 0.05]),
    )
    def test_clean_buffer_runs_are_report_free(
        self, seed, pairs, capacity, interval, service
    ):
        kernel, buffer, history, detector = run_buffer(
            seed=seed,
            producers=pairs,
            consumers_n=pairs,
            capacity=capacity,
            items=12,
            interval=interval,
            service=service,
        )
        kernel.raise_failures()
        assert detector.clean, [str(r) for r in detector.reports]
        fd_reports = check_full_trace(
            buffer.declaration,
            history.full_trace,
            final_state=buffer.snapshot(),
            tmax=100.0,
            tio=100.0,
        )
        assert fd_reports == []

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), users=st.integers(2, 5))
    def test_clean_allocator_runs_are_report_free(self, seed, users):
        kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
        history = HistoryDatabase(retain_full_trace=True)
        allocator = SingleResourceAllocator(kernel, history=history)
        detector = FaultDetector(
            allocator, DetectorConfig(interval=0.5, tlimit=100.0)
        )

        def user(i):
            for __ in range(4):
                yield Delay(0.03 * (i + 1))
                yield from allocator.request()
                yield Delay(0.08)
                yield from allocator.release()

        for i in range(users):
            kernel.spawn(user(i))
        kernel.spawn(detector_process(detector), "detector")
        kernel.run(until=120)
        kernel.raise_failures()
        assert detector.clean, [str(r) for r in detector.reports]
        fd_reports = check_full_trace(
            allocator.declaration,
            history.full_trace,
            final_state=allocator.snapshot(),
            tlimit=100.0,
        )
        assert fd_reports == []


# Perturbations whose effects are visible in the event sequence itself (as
# opposed to requiring timer sweeps), so both checkers must notice them.
SEQUENCE_VISIBLE = (
    "enter_despite_owner",
    "wait_no_block",
    "fake_resume",
    "hold_monitor_on_exit",
)


class TestStFdAgreement:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 5_000),
        perturbation=st.sampled_from(SEQUENCE_VISIBLE),
        fire_at=st.integers(1, 3),
    )
    def test_windowed_and_offline_checkers_agree(
        self, seed, perturbation, fire_at
    ):
        hooks = TriggeredHooks(perturbation, fire_at=fire_at)
        kernel, buffer, history, detector = run_buffer(
            seed=seed,
            producers=2,
            consumers_n=2,
            capacity=2,
            items=15,
            interval=0.4,
            service=0.03,
            hooks=hooks,
        )
        if hooks.fired == 0:
            return  # the perturbation found no opportunity under this seed
        fd_reports = check_full_trace(
            buffer.declaration,
            history.full_trace,
            final_state=buffer.snapshot(),
            tmax=100.0,
            tio=100.0,
        )
        st_found = not detector.clean
        fd_found = bool(fd_reports)
        assert st_found == fd_found
        assert st_found, (
            f"activated {perturbation} went undetected "
            f"(events={history.total_recorded})"
        )
