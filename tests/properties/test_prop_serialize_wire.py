"""Property tests: the process-plane wire codecs round-trip exactly.

The :class:`~repro.detection.procpool.ProcessEvaluationPool` ships
checking windows to evaluator worker processes as JSON — segments,
checkpoint captures and fault reports all cross the process boundary
through :mod:`repro.history.serialize`.  Whatever the sim produces,
``decode(encode(x)) == x`` must hold bit-for-bit (structural equality on
the frozen dataclasses), including lossy windows where the bounded sink
dropped events (``Segment.dropped > 0``), because the byte-identical
report-stream guarantee of the plane comparison rests on it.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.engine import CheckpointCapture
from repro.detection.reports import (
    Confidence,
    FaultReport,
    report_from_dict,
    report_to_dict,
)
from repro.detection.rules import FDRule, STRule
from repro.history import BoundedHistory
from repro.history.serialize import (
    capture_from_dict,
    capture_to_dict,
    event_from_dict,
    events_from_wire,
    event_to_dict,
    request_list_from_wire,
    request_list_to_wire,
    segment_from_dict,
    segment_to_dict,
    segment_to_json,
    state_from_dict,
    state_to_dict,
)
from repro.history.sink import Segment
from repro.history.states import QueueEntry, SchedulingState
from repro.kernel import Delay, FifoPolicy, SimKernel
from tests.history.test_serialize import events_strategy


# --------------------------------------------------------- strategies


@st.composite
def queue_entries(draw):
    return QueueEntry(
        draw(st.integers(1, 500)),
        draw(st.sampled_from(["Send", "Receive", "Request"])),
        draw(st.floats(0, 1e6, allow_nan=False, allow_infinity=False)),
    )


@st.composite
def states_strategy(draw):
    conds = draw(
        st.dictionaries(
            st.sampled_from(["full", "empty", "ready"]),
            st.tuples(queue_entries()),
            max_size=3,
        )
    )
    return SchedulingState(
        time=draw(st.floats(0, 1e6, allow_nan=False, allow_infinity=False)),
        entry_queue=tuple(draw(st.lists(queue_entries(), max_size=3))),
        cond_queues=conds,
        running=tuple(draw(st.lists(queue_entries(), max_size=2))),
        urgent=tuple(draw(st.lists(queue_entries(), max_size=2))),
        resource_count=draw(st.integers(0, 5)),
    )


@st.composite
def segments_strategy(draw):
    events = draw(st.lists(events_strategy(), max_size=12))
    return Segment(
        previous=draw(states_strategy()),
        events=tuple(events),
        current=draw(states_strategy()),
        # Lossy windows included: dropped > 0 is the DEGRADED-confidence
        # path and must survive the wire unchanged.
        dropped=draw(st.integers(0, 5)),
    )


@st.composite
def reports_strategy(draw):
    rule = draw(st.sampled_from(list(STRule) + list(FDRule)))
    return FaultReport(
        rule=rule,
        message=draw(st.sampled_from(["boom", "late exit", "pid 3 stuck"])),
        monitor=draw(st.sampled_from(["alloc", "buffer"])),
        detected_at=draw(
            st.floats(0, 1e6, allow_nan=False, allow_infinity=False)
        ),
        pids=tuple(draw(st.lists(st.integers(1, 500), max_size=3))),
        event_seq=draw(st.one_of(st.none(), st.integers(0, 10_000))),
        window_start=draw(
            st.one_of(
                st.none(),
                st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
            )
        ),
        confidence=draw(st.sampled_from(list(Confidence))),
    )


request_lists = st.one_of(
    st.none(),
    st.lists(
        st.tuples(
            st.integers(1, 500),
            st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
        ),
        max_size=5,
    ).map(tuple),
)


# ------------------------------------------------------ arbitrary inputs


class TestWireRoundTripProperties:
    @settings(max_examples=100, deadline=None)
    @given(segment=segments_strategy())
    def test_any_segment_round_trips(self, segment):
        assert segment_from_dict(segment_to_dict(segment)) == segment

    @settings(max_examples=100, deadline=None)
    @given(segment=segments_strategy())
    def test_fused_json_matches_dict_encoder(self, segment):
        # The hand-fused encoder rides the dispatch thread's hot path;
        # it must stay byte-identical to the reference encoding.
        reference = json.dumps(segment_to_dict(segment), separators=(",", ":"))
        assert segment_to_json(segment) == reference
        assert segment_from_dict(json.loads(segment_to_json(segment))) == segment

    @settings(max_examples=100, deadline=None)
    @given(events=st.lists(events_strategy(), max_size=12))
    def test_batch_event_decoder_matches_reference(self, events):
        records = [event_to_dict(event) for event in events]
        assert events_from_wire(records) == tuple(
            event_from_dict(record) for record in records
        )

    @settings(max_examples=100, deadline=None)
    @given(request_list=request_lists)
    def test_any_request_list_round_trips(self, request_list):
        wire = request_list_to_wire(request_list)
        assert request_list_from_wire(wire) == request_list
        # JSON-compatible on the nose: survives an actual dumps/loads.
        assert request_list_from_wire(json.loads(json.dumps(wire))) == (
            request_list
        )

    @settings(max_examples=150, deadline=None)
    @given(report=reports_strategy())
    def test_any_report_round_trips(self, report):
        record = report_to_dict(report)
        assert report_from_dict(json.loads(json.dumps(record))) == report


# ------------------------------------------------------ seeded sim runs


def run_detected_workload(*, bounded=None, seed_delay=0.1):
    """A seeded allocator run with a bare-release order violation.

    Returns the session's engine after the workload drained: its report
    stream is non-empty (the replay checker flags the rogue release) and,
    with ``bounded``, its capture windows carry ``dropped > 0``.
    """
    from repro.apps import SingleResourceAllocator
    from repro.detection import DetectionEngine, DetectorConfig
    from repro.history import HistoryDatabase

    kernel = SimKernel(FifoPolicy(), on_deadlock="stop")
    history = BoundedHistory(bounded) if bounded else HistoryDatabase()
    allocator = SingleResourceAllocator(kernel, history=history)
    config = DetectorConfig(
        interval=0.5,
        tmax=120.0,
        tio=120.0,
        tlimit=120.0,
        realtime_orders=False,
        incremental_checking=False,
    )
    engine = DetectionEngine(kernel, config)
    engine.register(allocator)

    def user():
        for __ in range(6):
            yield Delay(seed_delay)
            yield from allocator.request()
            yield Delay(0.05)
            yield from allocator.release()

    def rogue():
        yield Delay(3.0)
        yield from allocator.release()

    kernel.spawn(user(), "user")
    kernel.spawn(rogue(), "rogue")
    return kernel, engine


class TestSeededSimWindows:
    def _captures(self, *, bounded=None):
        kernel, engine = run_detected_workload(bounded=bounded)
        captures = []

        def pacer():
            while True:
                yield Delay(0.5)
                engine.capture_phase()
                batch = engine.take_pending_captures()
                captures.extend(batch)
                # Keep the parent checkers advancing like the real plane.
                engine._pending_captures[:0] = batch
                engine.evaluate_phase()

        kernel.spawn(pacer(), "pacer")
        kernel.run(until=6.0)
        return captures, engine

    def test_sim_captures_round_trip(self):
        captures, engine = self._captures()
        assert captures, "workload produced no checkpoint windows"
        entry = engine.entries[0]
        for capture in captures:
            record = json.loads(
                json.dumps(capture_to_dict(capture), separators=(",", ":"))
            )
            decoded = capture_from_dict(record, entry)
            assert decoded.segment == capture.segment
            assert decoded.snapshot == capture.snapshot
            assert decoded.request_list == capture.request_list
            assert decoded.taken_at == capture.taken_at
            assert isinstance(decoded, CheckpointCapture)

    def test_sim_lossy_windows_round_trip_with_drop_count(self):
        captures, engine = self._captures(bounded=3)
        dropped = [c for c in captures if c.segment.dropped > 0]
        assert dropped, "bounded sink produced no lossy windows"
        for capture in dropped:
            decoded = segment_from_dict(segment_to_dict(capture.segment))
            assert decoded == capture.segment
            assert decoded.dropped == capture.segment.dropped
            assert not decoded.complete

    def test_sim_reports_round_trip(self):
        captures, engine = self._captures()
        reports = engine.reports
        assert reports, "rogue release produced no fault report"
        for report in reports:
            record = json.loads(json.dumps(report_to_dict(report)))
            assert report_from_dict(record) == report

    def test_sim_states_round_trip(self):
        captures, engine = self._captures()
        for capture in captures:
            assert state_from_dict(state_to_dict(capture.snapshot)) == (
                capture.snapshot
            )
