"""Stateful property testing of the Mesa (signal-and-continue) discipline.

Same shape as the signal-exit machine, but with non-exiting signals and
broadcast: a signalled waiter is moved to the entry queue and readmitted
later, so the blocked-set bookkeeping follows wake-ups from *admissions*
rather than direct hand-offs.  The extended checker must stay clean over
every reachable interleaving.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.detection.fd_rules import empty_initial_state
from repro.detection.replay import ReplayMachine
from repro.history import HistoryDatabase
from repro.monitor import (
    Discipline,
    MonitorCore,
    MonitorDeclaration,
    MonitorType,
)

PIDS = list(range(1, 5))
CONDS = ("alpha", "beta")


class MesaMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.history = HistoryDatabase(retain_full_trace=True)
        declaration = MonitorDeclaration(
            name="mesa",
            mtype=MonitorType.OPERATION_MANAGER,
            procedures=("Op",),
            conditions=CONDS,
            discipline=Discipline.SIGNAL_AND_CONTINUE,
        )
        clock = {"time": 0.0}

        def now():
            clock["time"] += 0.001
            return clock["time"]

        self.core = MonitorCore(declaration, now=now)
        self.core.attach_history(self.history)
        self.blocked: set[int] = set()
        self.inside: set[int] = set()

    def _idle(self):
        return [
            pid for pid in PIDS
            if pid not in self.blocked and pid not in self.inside
        ]

    def _absorb_wakes(self, transition):
        for woken in transition.wake:
            self.blocked.discard(woken)
            self.inside.add(woken)

    @rule()
    def observe(self):
        self.core.snapshot()

    @precondition(lambda self: self._idle())
    @rule(choice=st.integers(0, 10_000))
    def enter(self, choice):
        candidates = self._idle()
        pid = candidates[choice % len(candidates)]
        transition = self.core.enter(pid, "Op")
        if transition.caller_blocks:
            self.blocked.add(pid)
        else:
            self.inside.add(pid)
        self._absorb_wakes(transition)

    @precondition(lambda self: self.inside)
    @rule(choice=st.integers(0, 10_000), cond=st.sampled_from(CONDS))
    def wait(self, choice, cond):
        candidates = sorted(self.inside)
        pid = candidates[choice % len(candidates)]
        self.inside.discard(pid)
        transition = self.core.wait(pid, cond)
        self.blocked.add(pid)
        self._absorb_wakes(transition)

    @precondition(lambda self: self.inside)
    @rule(choice=st.integers(0, 10_000), cond=st.sampled_from(CONDS))
    def mesa_signal(self, choice, cond):
        candidates = sorted(self.inside)
        pid = candidates[choice % len(candidates)]
        transition = self.core.signal(pid, cond)
        # signal-and-continue: the signaller keeps running, nobody wakes yet
        assert not transition.caller_blocks
        assert transition.wake == ()

    @precondition(lambda self: self.inside)
    @rule(choice=st.integers(0, 10_000), cond=st.sampled_from(CONDS))
    def broadcast(self, choice, cond):
        candidates = sorted(self.inside)
        pid = candidates[choice % len(candidates)]
        transition = self.core.broadcast(pid, cond)
        assert not transition.caller_blocks

    @precondition(lambda self: self.inside)
    @rule(choice=st.integers(0, 10_000))
    def plain_exit(self, choice):
        candidates = sorted(self.inside)
        pid = candidates[choice % len(candidates)]
        self.inside.discard(pid)
        transition = self.core.exit(pid)
        self._absorb_wakes(transition)

    # ------------------------------------------------------------ invariants

    @invariant()
    def mutual_exclusion(self):
        assert len(self.core.running_pids) <= 1

    @invariant()
    def model_agrees_with_core(self):
        assert set(self.core.running_pids) == self.inside

    @invariant()
    def replay_is_clean(self):
        machine = ReplayMachine(
            self.core.declaration,
            empty_initial_state(self.core.declaration),
        )
        machine.replay(self.history.full_trace)
        machine.compare_with(self.core.snapshot())
        assert machine.violations == [], [
            str(violation) for violation in machine.violations
        ]


MesaMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=25, deadline=None
)
TestMesaMachine = MesaMachine.TestCase
