"""Property-based tests of the simulation substrate.

Invariants: seeded determinism (byte-identical traces), semaphore safety
under arbitrary interleavings, and the paper's event/state sequence
correspondence (Section 3.1: a total order of events with non-decreasing
timestamps).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import BoundedBuffer
from repro.history import HistoryDatabase
from repro.kernel import Delay, KernelSemaphore, RandomPolicy, SimKernel
from tests.conftest import consumer, producer


def buffer_trace(seed: int, pairs: int, capacity: int):
    kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    history = HistoryDatabase(retain_full_trace=True)
    buffer = BoundedBuffer(
        kernel, capacity=capacity, history=history, service_time=0.02
    )
    for __ in range(pairs):
        kernel.spawn(producer(buffer, 10, delay=0.03))
        kernel.spawn(consumer(buffer, 10, delay=0.03))
    kernel.run(until=60, max_steps=2_000_000)
    kernel.raise_failures()
    return history.full_trace


class TestDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        pairs=st.integers(1, 3),
        capacity=st.integers(1, 5),
    )
    def test_same_seed_same_trace(self, seed, pairs, capacity):
        first = buffer_trace(seed, pairs, capacity)
        second = buffer_trace(seed, pairs, capacity)
        assert first == second


class TestEventSequenceLaws:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000), pairs=st.integers(1, 3))
    def test_total_order_and_monotonic_time(self, seed, pairs):
        """Section 3.1: l_i precedes l_j in L iff i < j; timestamps follow."""
        trace = buffer_trace(seed, pairs, capacity=3)
        seqs = [event.seq for event in trace]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        times = [event.time for event in trace]
        assert all(a <= b for a, b in zip(times, times[1:]))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_every_wait_preceded_by_matching_enter(self, seed):
        """FD-Rule 1(d) holds by construction on the honest substrate: no
        process issues Wait or Signal-Exit before its first Enter event.
        (Blocked Enters resume without a new event, so "has an earlier
        Enter of either flag" is the trace-level form of the rule.)"""
        trace = buffer_trace(seed, pairs=2, capacity=2)
        entered: set[int] = set()
        for event in trace:
            if event.is_enter:
                entered.add(event.pid)
            else:
                assert event.pid in entered


class TestSemaphoreSafety:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        permits=st.integers(1, 4),
        workers=st.integers(2, 6),
    )
    def test_holders_never_exceed_permits(self, seed, permits, workers):
        kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
        sem = KernelSemaphore(kernel, permits)
        holding = {"count": 0, "peak": 0}

        def worker(i):
            for __ in range(4):
                yield Delay(0.01 * (i + 1))
                yield from sem.acquire()
                holding["count"] += 1
                holding["peak"] = max(holding["peak"], holding["count"])
                yield Delay(0.05)
                holding["count"] -= 1
                sem.release()

        for i in range(workers):
            kernel.spawn(worker(i))
        kernel.run(until=60)
        kernel.raise_failures()
        assert holding["peak"] <= permits
        assert holding["count"] == 0
        assert sem.value == permits


class TestMetricsConservation:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        pairs=st.integers(1, 3),
        capacity=st.integers(1, 4),
    )
    def test_metrics_counts_conserve(self, seed, pairs, capacity):
        """Completed calls equal the operations performed; every contended
        enter is eventually admitted (its wait is measured)."""
        from repro.monitor.metrics import MonitorMetrics

        kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
        history = HistoryDatabase()
        buffer = BoundedBuffer(
            kernel, capacity=capacity, history=history, service_time=0.02
        )
        metrics = MonitorMetrics.attach(buffer)
        items = 8
        for __ in range(pairs):
            kernel.spawn(producer(buffer, items, delay=0.03))
            kernel.spawn(consumer(buffer, items, delay=0.03))
        kernel.run(until=60, max_steps=2_000_000)
        kernel.raise_failures()
        total_ops = pairs * items
        assert metrics.calls.get("Send", 0) == total_ops
        assert metrics.calls.get("Receive", 0) == total_ops
        assert metrics.total_enters == 2 * total_ops
        # all contended enters were admitted (workload quiesced)
        assert metrics.entry_wait.count == metrics.contended_enters
