"""Stateful property testing of MonitorCore (hypothesis rule machine).

Drives the pure core through random *valid* operation sequences — enters,
waits, signal-exits and plain exits by a pool of simulated processes — and
checks the paper's structural invariants after every step:

* at most one process in the Running set (mutual exclusion),
* a pid appears in at most one place (running / EQ / one CQ / urgent),
* the event log stays well-formed (total order, non-decreasing time),
* replaying the recorded events through the checking-list machine against
  the live snapshots yields **zero** violations (no false positives, for
  every reachable interleaving, not just app-shaped ones).

The machine mirrors the blocking protocol: a pid whose transition said
"caller blocks" is parked until some transition wakes it.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.detection.fd_rules import empty_initial_state
from repro.detection.replay import ReplayMachine
from repro.history import HistoryDatabase
from repro.monitor import MonitorCore, MonitorDeclaration, MonitorType

PIDS = list(range(1, 6))
CONDS = ("alpha", "beta")


def make_core(history):
    declaration = MonitorDeclaration(
        name="m",
        mtype=MonitorType.OPERATION_MANAGER,
        procedures=("Op",),
        conditions=CONDS,
    )
    clock = {"time": 0.0}

    def now():
        clock["time"] += 0.001  # strictly increasing event times
        return clock["time"]

    core = MonitorCore(declaration, now=now, history=None)
    core.attach_history(history)
    return core


class MonitorMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.history = HistoryDatabase(retain_full_trace=True)
        self.core = make_core(self.history)
        #: pids currently blocked (their last transition said so).
        self.blocked: set[int] = set()
        #: pids currently believed to be inside (admitted, running).
        self.inside: set[int] = set()

    # -------------------------------------------------------------- helpers

    def _apply(self, pid, transition):
        if transition.caller_blocks:
            self.blocked.add(pid)
            self.inside.discard(pid)
        else:
            self.inside.add(pid)
        for woken in transition.wake:
            self.blocked.discard(woken)
            self.inside.add(woken)

    def _idle_pids(self):
        return [
            pid
            for pid in PIDS
            if pid not in self.blocked and pid not in self.inside
        ]

    # ---------------------------------------------------------------- rules

    @precondition(lambda self: self._idle_pids())
    @rule(choice=st.integers(0, 10_000))
    def enter(self, choice):
        candidates = self._idle_pids()
        pid = candidates[choice % len(candidates)]
        transition = self.core.enter(pid, "Op")
        self._apply(pid, transition)

    @precondition(lambda self: self.inside)
    @rule(choice=st.integers(0, 10_000), cond=st.sampled_from(CONDS))
    def wait(self, choice, cond):
        candidates = sorted(self.inside)
        pid = candidates[choice % len(candidates)]
        self.inside.discard(pid)
        transition = self.core.wait(pid, cond)
        self._apply(pid, transition)
        if transition.caller_blocks:
            self.inside.discard(pid)

    @precondition(lambda self: self.inside)
    @rule(choice=st.integers(0, 10_000), cond=st.sampled_from(CONDS))
    def signal_exit(self, choice, cond):
        candidates = sorted(self.inside)
        pid = candidates[choice % len(candidates)]
        self.inside.discard(pid)
        transition = self.core.signal_exit(pid, cond)
        for woken in transition.wake:
            self.blocked.discard(woken)
            self.inside.add(woken)

    @rule()
    def observe(self):
        """Always-enabled no-op so runs where every process has blocked
        (everyone waiting on a condition nobody can signal — a legitimate
        reachable state) still satisfy hypothesis's progress requirement."""
        self.core.snapshot()

    @precondition(lambda self: self.inside)
    @rule(choice=st.integers(0, 10_000))
    def plain_exit(self, choice):
        candidates = sorted(self.inside)
        pid = candidates[choice % len(candidates)]
        self.inside.discard(pid)
        transition = self.core.exit(pid)
        for woken in transition.wake:
            self.blocked.discard(woken)
            self.inside.add(woken)

    # ------------------------------------------------------------ invariants

    @invariant()
    def mutual_exclusion(self):
        assert len(self.core.running_pids) <= 1

    @invariant()
    def each_pid_in_one_place(self):
        snapshot = self.core.snapshot()
        seen: list[int] = []
        seen.extend(entry.pid for entry in snapshot.running)
        seen.extend(entry.pid for entry in snapshot.entry_queue)
        seen.extend(entry.pid for entry in snapshot.urgent)
        for queue in snapshot.cond_queues.values():
            seen.extend(entry.pid for entry in queue)
        assert len(seen) == len(set(seen)), f"pid in two places: {seen}"

    @invariant()
    def model_agrees_with_core(self):
        assert set(self.core.running_pids) == self.inside

    @invariant()
    def event_log_well_formed(self):
        trace = self.history.full_trace
        seqs = [event.seq for event in trace]
        assert seqs == sorted(seqs)
        times = [event.time for event in trace]
        assert all(a <= b for a, b in zip(times, times[1:]))

    @invariant()
    def replay_is_clean(self):
        machine = ReplayMachine(
            self.core.declaration,
            empty_initial_state(self.core.declaration),
        )
        machine.replay(self.history.full_trace)
        machine.compare_with(self.core.snapshot())
        assert machine.violations == [], [
            str(violation) for violation in machine.violations
        ]


MonitorMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestMonitorMachine = MonitorMachine.TestCase
