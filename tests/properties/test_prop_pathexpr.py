"""Property-based tests: the order automaton against Python's re module.

A path expression maps directly onto a regular expression over single-
letter symbols.  We generate random path-expression ASTs, random candidate
words, and check that the automaton's language agrees exactly with
``re.fullmatch`` — plus the prefix-viability property Algorithm-3 relies
on: every prefix of an accepted word walks the trimmed DFA without hitting
a missing transition.
"""

from __future__ import annotations

import re
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pathexpr import Alt, Name, Opt, PathExpr, Plus, Seq, Star
from repro.pathexpr.automaton import compile_order

#: Single-letter procedure names so the regex translation is 1:1.
SYMBOLS = tuple(string.ascii_lowercase[:4])

names = st.sampled_from(SYMBOLS).map(Name)


def exprs(max_depth: int = 3) -> st.SearchStrategy[PathExpr]:
    return st.recursive(
        names,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda t: Seq(t)),
            st.tuples(inner, inner).map(lambda t: Alt(t)),
            inner.map(Star),
            inner.map(Plus),
            inner.map(Opt),
        ),
        max_leaves=8,
    )


def to_regex(expr: PathExpr) -> str:
    if isinstance(expr, Name):
        return re.escape(expr.value)
    if isinstance(expr, Seq):
        return "".join(f"(?:{to_regex(p)})" for p in expr.parts)
    if isinstance(expr, Alt):
        return "|".join(f"(?:{to_regex(o)})" for o in expr.options)
    if isinstance(expr, Star):
        return f"(?:{to_regex(expr.inner)})*"
    if isinstance(expr, Plus):
        return f"(?:{to_regex(expr.inner)})+"
    if isinstance(expr, Opt):
        return f"(?:{to_regex(expr.inner)})?"
    raise TypeError(expr)


def automaton_accepts(auto, word: str) -> bool:
    state = auto.start
    for symbol in word:
        state = auto.step(state, symbol)
        if state is None:
            return False
    return auto.accepts_now(state)


words = st.text(alphabet="".join(SYMBOLS), max_size=8)


@settings(max_examples=200, deadline=None)
@given(expr=exprs(), word=words)
def test_automaton_agrees_with_re(expr, word):
    """The automaton's language, projected onto the declared alphabet,
    is exactly the regex's language.  (Symbols outside the alphabet are
    unconstrained by design: a declaration need not mention every
    procedure.)"""
    auto = compile_order(str(expr))
    pattern = re.compile(to_regex(expr))
    projected = "".join(symbol for symbol in word if symbol in auto.alphabet)
    expected = pattern.fullmatch(projected) is not None
    assert automaton_accepts(auto, word) == expected


@settings(max_examples=200, deadline=None)
@given(expr=exprs(), word=words)
def test_prefix_viability(expr, word):
    """If the whole word is in the language, every prefix must walk the
    trimmed DFA without a missing transition (no false ordering violation
    mid-protocol)."""
    auto = compile_order(str(expr))
    pattern = re.compile(to_regex(expr))
    if pattern.fullmatch(word) is None:
        return
    state = auto.start
    for symbol in word:
        state = auto.step(state, symbol)
        assert state is not None


@settings(max_examples=100, deadline=None)
@given(expr=exprs())
def test_round_trip_compiles(expr):
    """str() of any AST reparses and compiles; empty word acceptance agrees
    with the regex."""
    auto = compile_order(str(expr))
    pattern = re.compile(to_regex(expr))
    assert auto.accepts_now(auto.start) == (pattern.fullmatch("") is not None)
