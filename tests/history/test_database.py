"""Unit tests for the history database (segments, pruning, taps)."""

import pytest

from repro.errors import CheckpointError, HistoryError
from repro.history import HistoryDatabase, SchedulingState
from repro.history.events import enter_event


def state_at(time):
    return SchedulingState(
        time=time, entry_queue=(), cond_queues={}, running=()
    )


def event(seq, time=0.0, pid=1):
    return enter_event(seq, pid, "Op", time, flag=1)


class TestRecording:
    def test_seq_numbers_monotonic(self):
        db = HistoryDatabase()
        assert [db.next_seq() for __ in range(3)] == [0, 1, 2]

    def test_record_accumulates(self):
        db = HistoryDatabase()
        db.record(event(0))
        db.record(event(1))
        assert len(db.pending_events) == 2
        assert db.total_recorded == 2

    def test_open_twice_rejected(self):
        db = HistoryDatabase()
        db.open(state_at(0.0))
        with pytest.raises(CheckpointError):
            db.open(state_at(1.0))


class TestCheckpoints:
    def test_cut_returns_segment_and_prunes(self):
        db = HistoryDatabase()
        db.open(state_at(0.0))
        db.record(event(0, 0.5))
        db.record(event(1, 0.8))
        segment = db.cut(state_at(1.0))
        assert len(segment) == 2
        assert segment.previous.time == 0.0
        assert segment.current.time == 1.0
        assert segment.duration == 1.0
        assert db.pending_events == ()
        assert db.live_events == 0
        assert db.total_recorded == 2  # accounting survives pruning

    def test_successive_segments_chain(self):
        db = HistoryDatabase()
        db.open(state_at(0.0))
        db.record(event(0, 0.5))
        first = db.cut(state_at(1.0))
        db.record(event(1, 1.5))
        second = db.cut(state_at(2.0))
        assert second.previous is first.current

    def test_cut_before_open_rejected(self):
        with pytest.raises(CheckpointError):
            HistoryDatabase().cut(state_at(1.0))

    def test_out_of_order_cut_rejected(self):
        db = HistoryDatabase()
        db.open(state_at(5.0))
        with pytest.raises(CheckpointError):
            db.cut(state_at(1.0))

    def test_empty_segment_allowed(self):
        db = HistoryDatabase()
        db.open(state_at(0.0))
        segment = db.cut(state_at(1.0))
        assert len(segment) == 0


class TestFullTrace:
    def test_full_trace_retained(self):
        db = HistoryDatabase(retain_full_trace=True)
        db.open(state_at(0.0))
        db.record(event(0))
        db.cut(state_at(1.0))
        db.record(event(1))
        assert len(db.full_trace) == 2
        assert len(db.full_states) == 2

    def test_full_trace_unavailable_by_default(self):
        db = HistoryDatabase()
        with pytest.raises(HistoryError):
            db.full_trace
        with pytest.raises(HistoryError):
            db.full_states


class TestPruningAccounting:
    def test_peak_live_tracks_window_size(self):
        db = HistoryDatabase()
        db.open(state_at(0.0))
        for seq in range(10):
            db.record(event(seq))
        db.cut(state_at(1.0))
        for seq in range(3):
            db.record(event(10 + seq))
        assert db.peak_live_events == 10
        assert db.live_events == 3


class TestSubscription:
    def test_listener_sees_every_event(self):
        db = HistoryDatabase()
        seen = []
        db.subscribe(seen.append)
        db.record(event(0))
        db.record(event(1))
        assert [e.seq for e in seen] == [0, 1]

    def test_multiple_listeners(self):
        db = HistoryDatabase()
        a, b = [], []
        db.subscribe(a.append)
        db.subscribe(b.append)
        db.record(event(0))
        assert len(a) == len(b) == 1
