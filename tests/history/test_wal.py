"""WriteAheadLog: fsync policies, rotation, torn tails, replay, reopen."""

import pytest

from repro.errors import CheckpointError, HistoryError
from repro.history import EventSink, FSYNC_POLICIES, WriteAheadLog
from repro.history.events import enter_event
from repro.history.states import SchedulingState


def event(seq, pid=1, t=None):
    return enter_event(seq, pid, "Send", t if t is not None else float(seq), flag=1)


def state(t):
    return SchedulingState(time=t, entry_queue=(), cond_queues={}, running=())


def make_wal(tmp_path, **kwargs):
    kwargs.setdefault("fsync", "never")
    return WriteAheadLog(tmp_path / "wal", **kwargs)


class TestSinkProtocol:
    def test_is_an_event_sink(self, tmp_path):
        assert isinstance(make_wal(tmp_path), EventSink)

    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(HistoryError):
            WriteAheadLog(tmp_path / "wal", fsync="sometimes")

    def test_records_land_in_window_and_on_disk(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.open(state(0.0))
        for seq in range(5):
            wal.record(event(seq))
        assert wal.live_events == 5
        assert wal.total_recorded == 5
        wal.flush()
        durable = list(wal.iter_durable_events())
        assert [e.seq for e in durable] == list(range(5))

    def test_cut_drains_window_but_keeps_disk(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.open(state(0.0))
        for seq in range(4):
            wal.record(event(seq))
        segment = wal.cut(state(5.0))
        assert len(segment) == 4
        assert segment.complete
        assert wal.live_events == 0
        wal.flush()
        assert len(list(wal.iter_durable_events())) == 4

    def test_double_open_rejected(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.open(state(0.0))
        with pytest.raises(CheckpointError):
            wal.open(state(1.0))


class TestFsyncPolicies:
    def test_policy_tuple_is_exported(self):
        assert FSYNC_POLICIES == ("always", "interval", "never")

    def test_always_syncs_every_append(self, tmp_path):
        wal = make_wal(tmp_path, fsync="always")
        wal.open(state(0.0))
        for seq in range(7):
            wal.record(event(seq))
        assert wal.fsyncs == 7

    def test_interval_syncs_every_n_appends_and_on_cut(self, tmp_path):
        wal = make_wal(tmp_path, fsync="interval", fsync_every=4)
        wal.open(state(0.0))
        for seq in range(9):
            wal.record(event(seq))
        assert wal.fsyncs == 2  # after the 4th and 8th appends
        wal.cut(state(10.0))  # flushes the straggler
        assert wal.fsyncs == 3

    def test_never_never_syncs(self, tmp_path):
        wal = make_wal(tmp_path, fsync="never")
        wal.open(state(0.0))
        for seq in range(50):
            wal.record(event(seq))
        wal.cut(state(60.0))
        assert wal.fsyncs == 0


class TestSegmentRotation:
    def test_rotates_by_size(self, tmp_path):
        wal = make_wal(tmp_path, segment_bytes=256)
        wal.open(state(0.0))
        for seq in range(20):
            wal.record(event(seq))
        assert wal.segment_count > 1
        assert wal.segments_rotated == wal.segment_count - 1
        wal.flush()
        # Rotation loses nothing: the full stream reads back in order.
        assert [e.seq for e in wal.iter_durable_events()] == list(range(20))

    def test_bytes_written_matches_disk(self, tmp_path):
        wal = make_wal(tmp_path, segment_bytes=200)
        wal.open(state(0.0))
        for seq in range(12):
            wal.record(event(seq))
        wal.flush()
        on_disk = sum(path.stat().st_size for path in wal.segment_paths())
        assert wal.bytes_written == on_disk


class TestTornTails:
    def test_partial_final_line_truncated_on_reopen(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.open(state(0.0))
        for seq in range(3):
            wal.record(event(seq))
        wal.simulate_torn_append()
        wal.close()
        reopened = make_wal(tmp_path)
        assert reopened.torn_tails_truncated == 1
        assert [e.seq for e in reopened.iter_durable_events()] == [0, 1, 2]

    def test_unparseable_complete_final_line_truncated(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.open(state(0.0))
        wal.record(event(0))
        wal.close()
        path = wal.segment_paths()[-1]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "event", "seq": \n')
        reopened = make_wal(tmp_path)
        assert reopened.torn_tails_truncated == 1
        assert [e.seq for e in reopened.iter_durable_events()] == [0]

    def test_truncated_length_prefix_truncated_on_reopen(self, tmp_path):
        # A crash can land between writing a frame's length header and
        # its body; the tail is then a bare integer line — valid JSON,
        # but not a record.  Regression: this used to survive the torn-
        # tail scan and crash replay with an AttributeError.
        wal = make_wal(tmp_path)
        wal.open(state(0.0))
        for seq in range(3):
            wal.record(event(seq))
        wal.simulate_torn_length_prefix()
        wal.close()
        reopened = make_wal(tmp_path)
        assert reopened.torn_tails_truncated == 1
        assert [e.seq for e in reopened.iter_durable_events()] == [0, 1, 2]

    def test_new_appends_after_torn_prefix_recovery_replay(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.open(state(0.0))
        wal.record(event(0))
        wal.simulate_torn_length_prefix()
        wal.close()
        reopened = make_wal(tmp_path)
        reopened.open(state(1.0))
        reopened.record(event(1))
        reopened.flush()
        assert [e.seq for e in reopened.iter_durable_events()] == [0, 1]

    def test_corruption_before_the_tail_is_an_error(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.open(state(0.0))
        wal.record(event(0))
        wal.close()
        path = wal.segment_paths()[-1]
        raw = path.read_text(encoding="utf-8")
        path.write_text("not json at all\n" + raw, encoding="utf-8")
        # Non-tail corruption is not a crash artefact; reopen refuses it.
        with pytest.raises(HistoryError):
            make_wal(tmp_path)


class TestReopen:
    def test_seq_resumes_past_durable_events(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.open(state(0.0))
        for seq in range(5):
            wal.record(event(seq))
        wal.close()
        reopened = make_wal(tmp_path)
        assert reopened.next_seq() == 5

    def test_appends_continue_the_same_log(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.open(state(0.0))
        for seq in range(3):
            wal.record(event(seq))
        wal.close()
        reopened = make_wal(tmp_path)
        reopened.open(state(4.0))
        reopened.record(event(3))
        reopened.flush()
        assert [e.seq for e in reopened.iter_durable_events()] == [0, 1, 2, 3]


class TestReplayHooks:
    def test_replaying_context_skips_the_disk(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.open(state(0.0))
        before = wal.bytes_written
        with wal.replaying():
            wal.record(event(0))
        assert wal.bytes_written == before
        assert wal.live_events == 1

    def test_restore_event_bumps_counters_without_writing(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.open(state(0.0))
        wal.restore_event(event(7))
        assert wal.total_recorded == 1
        assert wal.next_seq() == 8
        assert wal.bytes_written == 0

    def test_close_is_idempotent(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.close()
        wal.close()
        assert wal.closed
