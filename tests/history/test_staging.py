"""Per-process staging buffer: batched ``record()`` across every sink.

Staging makes ``record()`` a cheap local append, flushed once per atomic
section (``cut()``) or whenever the batch fills.  The contract tested
here: staging is *observationally transparent* — every inspection surface
flushes first, listeners still fire synchronously per event, drop
accounting stays exact — and the WAL's staged batches produce bytes
identical to per-event appends.
"""

import pytest

from repro.errors import HistoryError
from repro.history import (
    BoundedHistory,
    EventSink,
    HistoryDatabase,
    WriteAheadLog,
)
from repro.history.database import DEFAULT_STAGING
from repro.history.events import enter_event
from repro.history.states import SchedulingState


def event(seq, pid=1, t=None):
    return enter_event(
        seq, pid, "Send", t if t is not None else float(seq), flag=1
    )


def state(t):
    return SchedulingState(time=t, entry_queue=(), cond_queues={}, running=())


class TestSinkStaging:
    def test_staging_must_be_positive(self):
        with pytest.raises(ValueError):
            HistoryDatabase(staging=0)

    def test_unstaged_sink_counts_no_flushes(self):
        sink = HistoryDatabase(staging=1)
        sink.open(state(0.0))
        for seq in range(5):
            sink.record(event(seq))
        assert sink.staged_events == 0
        assert sink.staged_flushes == 0
        assert sink.live_events == 5

    def test_batch_flushes_at_limit(self):
        sink = HistoryDatabase(staging=3)
        sink.open(state(0.0))
        for seq in range(7):
            sink.record(event(seq))
        # 7 records = two full batches flushed, one event still staged.
        assert sink.staged_flushes == 2
        assert sink.staged_events == 6
        assert sink.total_recorded == 7

    def test_cut_flushes_the_tail(self):
        sink = HistoryDatabase(staging=100)
        sink.open(state(0.0))
        for seq in range(4):
            sink.record(event(seq))
        segment = sink.cut(state(5.0))
        assert len(segment) == 4
        assert sink.staged_flushes == 1
        assert sink.staged_events == 4

    def test_inspection_properties_flush(self):
        sink = HistoryDatabase(staging=100)
        sink.open(state(0.0))
        for seq in range(3):
            sink.record(event(seq))
        # Reading pending_events must not miss staged appends.
        assert [e.seq for e in sink.pending_events] == [0, 1, 2]
        assert sink.live_events == 3

    def test_listeners_fire_synchronously_despite_staging(self):
        sink = HistoryDatabase(staging=100)
        sink.open(state(0.0))
        seen = []
        sink.subscribe(lambda e: seen.append(e.seq))
        for seq in range(3):
            sink.record(event(seq))
        assert seen == [0, 1, 2]

    def test_database_stages_by_default(self):
        sink = HistoryDatabase()
        assert sink._staging_limit == DEFAULT_STAGING

    def test_flush_staged_reports_batch_size(self):
        sink = HistoryDatabase(staging=100)
        sink.open(state(0.0))
        for seq in range(4):
            sink.record(event(seq))
        assert sink.flush_staged() == 4
        assert sink.flush_staged() == 0


class TestBoundedStaging:
    def test_default_staging_bounded_by_capacity(self):
        assert BoundedHistory(4)._staging_limit == 4
        assert BoundedHistory(10_000)._staging_limit == DEFAULT_STAGING

    def test_drop_accounting_exact_across_flushes(self):
        sink = BoundedHistory(3, staging=2)
        sink.open(state(0.0))
        for seq in range(9):
            sink.record(event(seq))
        segment = sink.cut(state(10.0))
        # Capacity 3: only the last three events survive; six dropped.
        assert [e.seq for e in segment.events] == [6, 7, 8]
        assert segment.dropped == 6
        assert not segment.complete

    def test_dropped_events_property_flushes(self):
        sink = BoundedHistory(2, staging=10)
        sink.open(state(0.0))
        for seq in range(5):
            sink.record(event(seq))
        # The staged tail must be folded in before eviction is counted.
        assert sink.dropped_events == 3


class TestWalStaging:
    def test_staged_wal_bytes_identical_to_unstaged(self, tmp_path):
        staged = WriteAheadLog(tmp_path / "staged", fsync="never", staging=4)
        plain = WriteAheadLog(tmp_path / "plain", fsync="never")
        for wal in (staged, plain):
            wal.open(state(0.0))
            for seq in range(10):
                wal.record(event(seq))
            wal.cut(state(11.0))
            wal.close()
        staged_bytes = b"".join(
            p.read_bytes() for p in sorted((tmp_path / "staged").iterdir())
        )
        plain_bytes = b"".join(
            p.read_bytes() for p in sorted((tmp_path / "plain").iterdir())
        )
        assert staged_bytes == plain_bytes

    def test_staged_wal_replays_identically(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="never", staging=3)
        wal.open(state(0.0))
        for seq in range(7):
            wal.record(event(seq))
        wal.flush()
        assert [e.seq for e in wal.iter_durable_events()] == list(range(7))

    def test_staging_incompatible_with_fsync_always(self, tmp_path):
        with pytest.raises(HistoryError):
            WriteAheadLog(tmp_path / "wal", fsync="always", staging=8)

    def test_unstaged_is_the_wal_default(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="never")
        assert wal._staging_limit == 1
