"""Unit tests for scheduling events."""

import pytest

from repro.history.events import (
    EventKind,
    SchedulingEvent,
    enter_event,
    signal_event,
    signal_exit_event,
    wait_event,
)


class TestConstructors:
    def test_enter_event(self):
        event = enter_event(0, 5, "Send", 1.5, flag=1)
        assert event.kind is EventKind.ENTER
        assert event.pid == 5
        assert event.pname == "Send"
        assert event.time == 1.5
        assert event.flag == 1
        assert event.cond is None
        assert event.is_enter and not event.is_wait

    def test_wait_event_flag_always_zero(self):
        event = wait_event(1, 5, "Send", "full", 2.0)
        assert event.flag == 0
        assert event.cond == "full"
        assert event.is_wait

    def test_signal_exit_with_and_without_cond(self):
        with_cond = signal_exit_event(2, 5, "Send", 3.0, flag=1, cond="empty")
        plain = signal_exit_event(3, 5, "Send", 3.5, flag=0)
        assert with_cond.cond == "empty"
        assert plain.cond is None
        assert with_cond.is_signal_exit and plain.is_signal_exit

    def test_signal_event(self):
        event = signal_event(4, 2, "PickUp", "self0", 1.0, 1)
        assert event.kind is EventKind.SIGNAL
        assert event.is_signal


class TestValidation:
    def test_bad_flag_rejected(self):
        with pytest.raises(ValueError):
            SchedulingEvent(
                seq=0, kind=EventKind.ENTER, pid=1, pname="Op", time=0.0, flag=2
            )

    def test_wait_requires_condition(self):
        with pytest.raises(ValueError):
            SchedulingEvent(
                seq=0, kind=EventKind.WAIT, pid=1, pname="Op", time=0.0
            )


class TestSemantics:
    def test_releases_monitor(self):
        assert wait_event(0, 1, "Op", "c", 0.0).releases_monitor
        assert signal_exit_event(1, 1, "Op", 0.0, 0).releases_monitor
        assert not enter_event(2, 1, "Op", 0.0, 1).releases_monitor
        assert not signal_event(3, 1, "Op", "c", 0.0, 1).releases_monitor

    def test_str_rendering(self):
        text = str(wait_event(0, 7, "Send", "full", 1.25))
        assert "Wait" in text and "P7" in text and "full" in text

    def test_events_are_immutable(self):
        event = enter_event(0, 1, "Op", 0.0, 1)
        with pytest.raises(AttributeError):
            event.pid = 2
