"""Tests for trace serialisation (JSONL round trips)."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HistoryError
from repro.history.events import (
    EventKind,
    SchedulingEvent,
    enter_event,
    signal_exit_event,
    wait_event,
)
from repro.history.serialize import (
    dump_trace,
    event_from_dict,
    event_to_dict,
    load_trace,
    state_from_dict,
    state_to_dict,
)
from repro.history.states import QueueEntry, SchedulingState


def sample_state():
    return SchedulingState(
        time=4.2,
        entry_queue=(QueueEntry(1, "Send", 1.0),),
        cond_queues={"full": (QueueEntry(2, "Send", 2.0),), "empty": ()},
        running=(QueueEntry(3, "Receive", 3.0),),
        urgent=(QueueEntry(4, "Send", 3.5),),
        resource_count=2,
    )


class TestDictRoundTrips:
    def test_event_round_trip(self):
        event = signal_exit_event(7, 3, "Send", 1.25, flag=1, cond="empty")
        assert event_from_dict(event_to_dict(event)) == event

    def test_event_without_cond(self):
        event = enter_event(0, 1, "Op", 0.0, 1)
        record = event_to_dict(event)
        assert "cond" not in record
        assert event_from_dict(record) == event

    def test_state_round_trip(self):
        state = sample_state()
        loaded = state_from_dict(state_to_dict(state))
        assert loaded.time == state.time
        assert loaded.entry_queue == state.entry_queue
        assert dict(loaded.cond_queues) == dict(state.cond_queues)
        assert loaded.running == state.running
        assert loaded.urgent == state.urgent
        assert loaded.resource_count == state.resource_count

    def test_wrong_kind_rejected(self):
        with pytest.raises(HistoryError):
            event_from_dict({"kind": "state"})
        with pytest.raises(HistoryError):
            state_from_dict({"kind": "event"})

    def test_malformed_event_rejected(self):
        with pytest.raises(HistoryError):
            event_from_dict({"kind": "event", "event": "Nonsense", "seq": 0})


class TestStreamRoundTrips:
    def test_dump_and_load(self):
        events = (
            enter_event(0, 1, "Send", 0.1, 1),
            wait_event(1, 1, "Send", "full", 0.2),
            signal_exit_event(2, 2, "Receive", 0.3, 1, cond="full"),
        )
        states = (sample_state(),)
        buffer = io.StringIO()
        written = dump_trace(buffer, events, states)
        assert written == 4
        buffer.seek(0)
        loaded_events, loaded_states = load_trace(buffer)
        assert loaded_events == events
        assert len(loaded_states) == 1

    def test_events_resorted_by_seq(self):
        events = (
            enter_event(5, 1, "Send", 0.5, 1),
            enter_event(2, 2, "Send", 0.2, 0),
        )
        buffer = io.StringIO()
        dump_trace(buffer, events)
        buffer.seek(0)
        loaded, __ = load_trace(buffer)
        assert [event.seq for event in loaded] == [2, 5]

    def test_blank_lines_skipped(self):
        buffer = io.StringIO('\n{"kind": "event", "event": "Enter", '
                             '"seq": 0, "pid": 1, "pname": "Op", '
                             '"time": 0.0, "flag": 1}\n\n')
        events, states = load_trace(buffer)
        assert len(events) == 1 and states == ()

    def test_invalid_json_rejected_with_line_number(self):
        buffer = io.StringIO("{not json}\n")
        with pytest.raises(HistoryError, match="line 1"):
            load_trace(buffer)

    def test_unknown_kind_rejected(self):
        buffer = io.StringIO('{"kind": "mystery"}\n')
        with pytest.raises(HistoryError, match="unknown record kind"):
            load_trace(buffer)


# hypothesis strategies for arbitrary events
kinds = st.sampled_from(list(EventKind))


@st.composite
def events_strategy(draw):
    kind = draw(kinds)
    cond = draw(st.sampled_from(["full", "empty", None]))
    if kind is EventKind.WAIT and cond is None:
        cond = "full"
    flag = 0 if kind is EventKind.WAIT else draw(st.integers(0, 1))
    return SchedulingEvent(
        seq=draw(st.integers(0, 10_000)),
        kind=kind,
        pid=draw(st.integers(1, 500)),
        pname=draw(st.sampled_from(["Send", "Receive", "Request", "Op"])),
        time=draw(
            st.floats(0, 1e6, allow_nan=False, allow_infinity=False)
        ),
        flag=flag,
        cond=cond,
    )


class TestPropertyRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(event=events_strategy())
    def test_any_event_round_trips(self, event):
        assert event_from_dict(event_to_dict(event)) == event

    @settings(max_examples=50, deadline=None)
    @given(events=st.lists(events_strategy(), max_size=20))
    def test_any_trace_round_trips(self, events):
        unique = {event.seq: event for event in events}
        trace = tuple(sorted(unique.values(), key=lambda e: e.seq))
        buffer = io.StringIO()
        dump_trace(buffer, trace)
        buffer.seek(0)
        loaded, __ = load_trace(buffer)
        assert loaded == trace


class TestEndToEnd:
    def test_dump_live_run_and_recheck_offline(self, kernel, tmp_path):
        """Persist a real run's trace to disk and re-check it offline."""
        from repro.apps import BoundedBuffer
        from repro.detection import check_full_trace
        from repro.history import HistoryDatabase
        from tests.conftest import consumer, producer

        history = HistoryDatabase(retain_full_trace=True)
        buffer = BoundedBuffer(kernel, capacity=3, history=history)
        kernel.spawn(producer(buffer, 10))
        kernel.spawn(consumer(buffer, 10))
        kernel.run(until=10)
        kernel.raise_failures()

        path = tmp_path / "trace.jsonl"
        with path.open("w") as stream:
            dump_trace(stream, history.full_trace, history.full_states)
        with path.open() as stream:
            events, states = load_trace(stream)
        assert events == history.full_trace
        reports = check_full_trace(buffer.declaration, events)
        assert reports == []


class TestSinkStateRoundTrip:
    """sink_state_to_dict / apply_sink_state, including drop accounting."""

    @staticmethod
    def _state(t):
        return SchedulingState(
            time=t, entry_queue=(), cond_queues={}, running=()
        )

    def _saturated_bounded(self, capacity=4, recorded=10):
        from repro.history import BoundedHistory

        sink = BoundedHistory(capacity)
        sink.open(self._state(0.0))
        for seq in range(recorded):
            sink.record(enter_event(seq, 1, "Send", float(seq), 1))
        return sink

    def test_bounded_drop_accounting_round_trips(self):
        from repro.history import BoundedHistory
        from repro.history.serialize import (
            apply_sink_state,
            sink_state_to_dict,
        )

        sink = self._saturated_bounded(capacity=4, recorded=10)
        assert sink.pending_dropped == 6
        record = sink_state_to_dict(sink)
        assert record["pending_dropped"] == 6

        restored = BoundedHistory(4)
        restored.open(self._state(0.0))
        apply_sink_state(restored, record)
        assert restored.total_recorded == sink.total_recorded
        assert restored.dropped_events == sink.dropped_events
        assert restored.pending_dropped == sink.pending_dropped
        assert restored.pending_events == sink.pending_events
        # The restored sink's next cut reports the same window losses the
        # crashed sink would have: degraded-mode confidence survives a
        # restart instead of silently resetting to "complete".
        original_cut = sink.cut(self._state(20.0))
        restored_cut = restored.cut(self._state(20.0))
        assert restored_cut.dropped == original_cut.dropped
        assert restored_cut.complete == original_cut.complete

    def test_restore_into_smaller_buffer_keeps_authoritative_totals(self):
        from repro.history import BoundedHistory
        from repro.history.serialize import (
            apply_sink_state,
            sink_state_to_dict,
        )

        sink = self._saturated_bounded(capacity=8, recorded=6)
        assert sink.dropped_events == 0
        record = sink_state_to_dict(sink)
        # Replaying 6 pending events into capacity 2 evicts 4 of them —
        # but those evictions happened during *restoration*, not in the
        # monitored run; the snapshot's accounting is authoritative.
        restored = BoundedHistory(2)
        restored.open(self._state(0.0))
        apply_sink_state(restored, record)
        assert restored.dropped_events == 0
        assert restored.pending_dropped == 0
        assert restored.live_events == 2

    def test_unbounded_sink_round_trips(self):
        from repro.history import HistoryDatabase
        from repro.history.serialize import (
            apply_sink_state,
            sink_state_to_dict,
        )

        sink = HistoryDatabase()
        sink.open(self._state(0.0))
        for seq in range(5):
            sink.record(enter_event(seq, 2, "Receive", float(seq), 1))
        record = sink_state_to_dict(sink)
        restored = HistoryDatabase()
        restored.open(self._state(0.0))
        apply_sink_state(restored, record)
        assert restored.pending_events == sink.pending_events
        assert restored.total_recorded == sink.total_recorded
        assert restored.dropped_events == 0
