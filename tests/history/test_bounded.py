"""BoundedHistory: ring-buffer capacity, drop accounting, sink protocol."""

import pytest

from repro.errors import CheckpointError
from repro.history import BoundedHistory, EventSink, HistoryDatabase
from repro.history.events import enter_event
from repro.history.states import SchedulingState
from repro.kernel import Delay, RandomPolicy, SimKernel
from repro.apps import BoundedBuffer


def event(seq, pid=1, t=None):
    return enter_event(seq, pid, "Send", t if t is not None else float(seq), flag=1)


def state(t):
    return SchedulingState(time=t, entry_queue=(), cond_queues={}, running=())


class TestRingBuffer:
    def test_is_an_event_sink(self):
        assert isinstance(BoundedHistory(4), EventSink)
        assert isinstance(HistoryDatabase(), EventSink)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BoundedHistory(0)
        with pytest.raises(ValueError):
            BoundedHistory(-3)

    def test_under_capacity_keeps_everything(self):
        sink = BoundedHistory(8)
        sink.open(state(0.0))
        for seq in range(5):
            sink.record(event(seq))
        assert sink.live_events == 5
        assert sink.dropped_events == 0
        assert sink.total_recorded == 5
        assert [e.seq for e in sink.pending_events] == list(range(5))

    def test_saturation_drops_oldest_and_counts(self):
        sink = BoundedHistory(4)
        sink.open(state(0.0))
        for seq in range(10):
            sink.record(event(seq))
        assert sink.live_events == 4
        assert sink.dropped_events == 6
        assert sink.pending_dropped == 6
        assert sink.total_recorded == 10
        # The survivors are the newest events, in order.
        assert [e.seq for e in sink.pending_events] == [6, 7, 8, 9]

    def test_cut_reports_window_drops_and_resets(self):
        sink = BoundedHistory(3)
        sink.open(state(0.0))
        for seq in range(5):
            sink.record(event(seq))
        segment = sink.cut(state(10.0))
        assert segment.dropped == 2
        assert not segment.complete
        assert len(segment) == 3
        assert sink.live_events == 0
        assert sink.pending_dropped == 0
        assert sink.dropped_events == 2  # cumulative total survives the cut
        # A clean follow-up window reports zero drops.
        sink.record(event(5, t=11.0))
        second = sink.cut(state(12.0))
        assert second.dropped == 0
        assert second.complete

    def test_peak_never_exceeds_capacity(self):
        sink = BoundedHistory(4)
        sink.open(state(0.0))
        for seq in range(100):
            sink.record(event(seq))
        assert sink.peak_live_events <= 4

    def test_checkpoint_protocol_matches_database(self):
        sink = BoundedHistory(16)
        with pytest.raises(CheckpointError):
            sink.cut(state(1.0))
        sink.open(state(0.0))
        with pytest.raises(CheckpointError):
            sink.open(state(0.5))
        with pytest.raises(CheckpointError):
            sink.cut(state(-1.0))


class TestListeners:
    def test_subscribe_and_unsubscribe(self):
        sink = BoundedHistory(4)
        sink.open(state(0.0))
        seen = []
        sink.subscribe(seen.append)
        sink.record(event(0))
        assert len(seen) == 1
        sink.unsubscribe(seen.append)
        sink.record(event(1))
        assert len(seen) == 1
        assert sink.listener_count == 0

    def test_unsubscribe_unknown_listener_is_noop(self):
        sink = HistoryDatabase()
        sink.unsubscribe(lambda e: None)  # must not raise

    def test_listeners_see_dropped_events_in_real_time(self):
        # Real-time taps fire on record, before any eviction matters.
        sink = BoundedHistory(2)
        sink.open(state(0.0))
        seen = []
        sink.subscribe(seen.append)
        for seq in range(6):
            sink.record(event(seq))
        assert len(seen) == 6


class TestUnderWorkload:
    def test_live_events_bounded_under_stress(self):
        """A saturating workload with no checkpoints stays within capacity."""
        kernel = SimKernel(RandomPolicy(seed=0), on_deadlock="stop")
        sink = BoundedHistory(32)
        buffer = BoundedBuffer(kernel, capacity=2, history=sink)

        def producer():
            for item in range(60):
                yield Delay(0.01)
                yield from buffer.send(item)

        def consumer():
            for __ in range(60):
                yield Delay(0.01)
                yield from buffer.receive()

        kernel.spawn(producer())
        kernel.spawn(consumer())
        kernel.run(until=30)
        kernel.raise_failures()
        assert sink.total_recorded > 32
        assert sink.live_events <= 32
        assert sink.dropped_events > 0
        assert sink.dropped_events == sink.total_recorded - sink.live_events


class TestForceDrop:
    """Chaos-harness load shedding: explicit evictions count like capacity
    evictions, so lossy windows are reported honestly downstream."""

    def test_evicts_oldest_first(self):
        sink = BoundedHistory(8)
        sink.open(state(0.0))
        for seq in range(5):
            sink.record(event(seq))
        assert sink.force_drop(2) == 2
        assert [e.seq for e in sink.pending_events] == [2, 3, 4]

    def test_counts_toward_window_and_total(self):
        sink = BoundedHistory(8)
        sink.open(state(0.0))
        for seq in range(5):
            sink.record(event(seq))
        sink.force_drop(3)
        assert sink.pending_dropped == 3
        assert sink.dropped_events == 3
        segment = sink.cut(state(1.0))
        assert segment.dropped == 3
        assert not segment.complete

    def test_returns_actual_evictions_when_short(self):
        sink = BoundedHistory(8)
        sink.open(state(0.0))
        sink.record(event(0))
        assert sink.force_drop(10) == 1
        assert sink.live_events == 0
        # Dropping from an empty window is a harmless no-op.
        assert sink.force_drop(4) == 0
        assert sink.dropped_events == 1

    def test_rejects_negative_count(self):
        sink = BoundedHistory(8)
        with pytest.raises(ValueError):
            sink.force_drop(-1)
