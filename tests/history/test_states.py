"""Unit tests for scheduling-state snapshots."""

import pytest

from repro.history.states import QueueEntry, SchedulingState


def entry(pid, pname="Op", since=0.0):
    return QueueEntry(pid, pname, since)


def make_state(**overrides):
    base = dict(
        time=10.0,
        entry_queue=(entry(1), entry(2)),
        cond_queues={"full": (entry(3),), "empty": ()},
        running=(entry(4),),
        resource_count=2,
    )
    base.update(overrides)
    return SchedulingState(**base)


class TestQueueEntry:
    def test_timer(self):
        assert entry(1, since=3.0).timer(10.0) == 7.0

    def test_str(self):
        assert "P1" in str(entry(1))


class TestAccessors:
    def test_pid_views(self):
        state = make_state()
        assert state.entry_pids == (1, 2)
        assert state.running_pids == (4,)
        assert state.cond_pids("full") == (3,)
        assert state.cond_pids("unknown") == ()

    def test_all_waiting_pids(self):
        assert make_state().all_waiting_pids() == frozenset({1, 2, 3})

    def test_find(self):
        state = make_state()
        assert state.find(4) == "running"
        assert state.find(1) == "entry"
        assert state.find(3) == "full"
        assert state.find(99) is None

    def test_find_urgent(self):
        state = make_state(urgent=(entry(8),))
        assert state.find(8) == "urgent"


class TestImmutability:
    def test_cond_queues_frozen(self):
        state = make_state()
        with pytest.raises(TypeError):
            state.cond_queues["full"] = ()

    def test_describe_mentions_everything(self):
        text = make_state().describe()
        assert "Running" in text
        assert "EQ" in text
        assert "CQ[full]" in text
        assert "R#" in text
