#!/usr/bin/env python3
"""The paper's Section-5 extensions: assertions and error recovery.

A process terminates inside the bounded buffer (fault I.c.4), wedging the
monitor: every later sender piles up on the entry queue.  The detector's
Tmax sweep finds the corpse; the recovery supervisor expels it and the
workload completes.  Alongside, user-supplied assertions check the
buffer's functional invariant (occupancy within bounds) at every
checkpoint.

Run:  python examples/recovery_and_assertions.py
"""

from repro import (
    AlarmStrategy,
    AssertionChecker,
    BoundedBuffer,
    Delay,
    DetectorConfig,
    ExpelStrategy,
    FaultDetector,
    HistoryDatabase,
    RandomPolicy,
    RecoverySupervisor,
    SimKernel,
)


def main():
    kernel = SimKernel(RandomPolicy(seed=5), on_deadlock="stop")
    buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
    detector = FaultDetector(
        buffer, DetectorConfig(interval=1.0, tmax=2.0, tio=60.0)
    )
    alarms = AlarmStrategy()
    supervisor = RecoverySupervisor(detector, [ExpelStrategy(), alarms])

    assertions = AssertionChecker(buffer)
    assertions.add(
        "occupancy-in-range",
        lambda snapshot: 0 <= buffer.occupancy <= buffer.capacity,
        "buffer occupancy must stay within capacity",
    )

    def saboteur():
        yield Delay(0.5)
        yield from buffer.monitor.enter("Send")
        # Terminates inside the monitor: fault I.c.4.

    sent = []
    received = []

    def sender(tag):
        yield Delay(1.0)
        yield from buffer.send(tag)
        sent.append(tag)

    def receiver():
        for __ in range(3):
            yield Delay(1.5)
            item = yield from buffer.receive()
            received.append(item)

    def supervisor_loop():
        # The recovery-enabled replacement for plain detector_process.
        for __ in range(12):
            yield Delay(1.0)
            supervisor.checkpoint_and_recover()
            assertions.evaluate()

    kernel.spawn(saboteur(), "saboteur")
    for tag in ("a", "b", "c"):
        kernel.spawn(sender(tag), f"sender-{tag}")
    kernel.spawn(receiver(), "receiver")
    kernel.spawn(supervisor_loop(), "supervisor")
    kernel.run(until=15)

    print("fault reports (first three):")
    for report in detector.reports[:3]:
        print(f"   {report}")
    print()
    print("recovery actions taken:")
    for record in supervisor.records:
        if record.action.value != "alarm":
            print(f"   {record.action.value}: {record.detail}")
    alarm_count = sum(
        1 for record in supervisor.records if record.action.value == "alarm"
    )
    print(f"   (+ {alarm_count} alarms recorded)")
    print()
    print(f"senders completed after recovery : {sorted(sent)}")
    print(f"items received                   : {sorted(received)}")
    print(f"assertion failures               : {len(assertions.reports)}")
    ok = sorted(sent) == ["a", "b", "c"] == sorted(received)
    print(f"monitor usable again             : {ok}")


if __name__ == "__main__":
    main()
