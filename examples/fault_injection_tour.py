#!/usr/bin/env python3
"""A tour of the full fault taxonomy: inject all 21 classes, watch them fall.

This is the paper's robustness experiment (Section 4) as a script: for
every concurrency-control fault class of the taxonomy, run its injection
campaign and print whether the detection algorithms caught it and through
which state-transition rules.

Run:  python examples/fault_injection_tour.py
"""

from repro import CAMPAIGNS, FaultClass, run_campaign
from repro.detection.faults import FaultLevel

LEVEL_TITLES = {
    FaultLevel.IMPLEMENTATION: "Level I — implementation level "
    "(Enter/Wait/Signal-Exit misbehaviour)",
    FaultLevel.PROCEDURE: "Level II — monitor procedure level "
    "(resource-state integrity)",
    FaultLevel.USER_PROCESS: "Level III — user process level "
    "(calling-order violations, checked in real time)",
}


def main():
    detected = 0
    for level in FaultLevel:
        print(LEVEL_TITLES[level])
        print("-" * 74)
        for fault in FaultClass.at_level(level):
            outcome = run_campaign(fault, seed=0)
            status = "DETECTED" if outcome.detected else "MISSED"
            if outcome.detected:
                detected += 1
            rules = ",".join(outcome.rules[:4]) or "-"
            print(
                f"  {fault.label:7s} {status:9s} via {rules:28s} "
                f"| {CAMPAIGNS[fault].description[:52]}"
            )
        print()
    total = len(FaultClass)
    print(f"coverage: {detected}/{total} injected fault classes detected")
    if detected == total:
        print('paper\'s claim reproduced: "all injected faults are detected"')


if __name__ == "__main__":
    main()
