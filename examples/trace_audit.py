#!/usr/bin/env python3
"""Persist a run's history and audit it offline.

Demonstrates the audit-trail workflow the history database enables:

1. run a monitored workload with full-trace retention,
2. dump the scheduling events and checkpoint states to a JSONL file,
3. reload the file (as a post-mortem tool would),
4. re-check the trace offline against FD-Rules 1–7, and
5. render fault-frequency statistics over the live detector's reports.

The same offline check is available from the command line::

    python -m repro check trace.jsonl --monitor buffer --rmax 3

Run:  python examples/trace_audit.py
"""

import tempfile
from pathlib import Path

from repro import (
    BoundedBuffer,
    Delay,
    DetectorConfig,
    FaultDetector,
    FaultStatistics,
    HistoryDatabase,
    RandomPolicy,
    SimKernel,
    TriggeredHooks,
    check_full_trace,
    detector_process,
)
from repro.history import dump_trace, load_trace


def run_workload(hooks=None):
    kernel = SimKernel(RandomPolicy(seed=13), on_deadlock="stop")
    history = HistoryDatabase(retain_full_trace=True)
    buffer = BoundedBuffer(
        kernel, capacity=3, history=history, hooks=hooks, service_time=0.02
    )
    if hooks is not None:
        hooks.core = buffer.monitor.core
    detector = FaultDetector(buffer, DetectorConfig(interval=0.5))

    def producer():
        for item in range(30):
            yield Delay(0.05)
            yield from buffer.send(item)

    def consumer():
        for __ in range(30):
            yield Delay(0.04)
            yield from buffer.receive()

    kernel.spawn(producer())
    kernel.spawn(consumer())
    kernel.spawn(detector_process(detector))
    kernel.run(until=20)
    kernel.raise_failures()
    return buffer, history, detector


def main():
    # A run with one injected "lost wakeup" style fault for the audit to find.
    hooks = TriggeredHooks("fake_resume")
    buffer, history, detector = run_workload(hooks)
    print(f"live run: {history.total_recorded} events recorded, "
          f"{len(detector.reports)} reports")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "buffer-trace.jsonl"
        with path.open("w") as stream:
            lines = dump_trace(stream, history.full_trace, history.full_states)
        print(f"dumped    : {lines} JSONL lines to {path.name} "
              f"({path.stat().st_size} bytes)")

        with path.open() as stream:
            events, states = load_trace(stream)
        print(f"reloaded  : {len(events)} events, {len(states)} states")

        reports = check_full_trace(
            buffer.declaration,
            events,
            final_state=buffer.snapshot(),
        )
        print(f"offline FD check: {len(reports)} violation(s)")
        for report in reports[:3]:
            print(f"   {report}")

    print()
    print("fault-frequency statistics over the live detector's reports:")
    stats = FaultStatistics.from_detector(detector)
    print(stats.render(top=5))


if __name__ == "__main__":
    main()
