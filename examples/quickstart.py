#!/usr/bin/env python3
"""Quickstart: a monitored bounded buffer with run-time fault detection.

Builds the paper's running example — a communication-coordinator monitor
(bounded buffer with Send/Receive) — on the deterministic simulation
kernel, attaches a DetectionSession, runs a clean producer/consumer
workload, and then shows what happens when a mutual-exclusion fault is
injected into the very same workload.

Run:  python examples/quickstart.py
"""

from repro import (
    BoundedBuffer,
    DetectionSession,
    DetectorConfig,
    Delay,
    HistoryDatabase,
    RandomPolicy,
    SimKernel,
    TriggeredHooks,
)


def producer(buffer, items):
    for item in range(items):
        yield Delay(0.05)
        yield from buffer.send(item)


def consumer(buffer, items, received):
    for __ in range(items):
        yield Delay(0.04)
        item = yield from buffer.receive()
        received.append(item)


def run(hooks=None):
    """One workload execution; returns (buffer, session, received)."""
    kernel = SimKernel(RandomPolicy(seed=7), on_deadlock="stop")
    history = HistoryDatabase(retain_full_trace=True)
    buffer = BoundedBuffer(
        kernel,
        capacity=3,
        history=history,
        hooks=hooks,
        service_time=0.02,  # time spent inside the monitor per operation
    )
    if hooks is not None:
        hooks.core = buffer.monitor.core
    session = DetectionSession(
        kernel,
        monitors=[buffer],
        config=DetectorConfig(interval=0.5, tmax=10.0, tio=10.0),
    )
    received = []
    kernel.spawn(producer(buffer, 25), "producer")
    kernel.spawn(consumer(buffer, 25, received), "consumer")
    session.start()
    kernel.run(until=20)
    kernel.raise_failures()
    return buffer, session, received


def main():
    print("=== clean run " + "=" * 50)
    buffer, session, received = run()
    print(f"items transferred : {len(received)} (in order: "
          f"{received == sorted(received)})")
    print(f"events recorded   : {buffer.history.total_recorded}")
    print(f"checkpoints run   : {session.checkpoints_run}")
    print(f"fault reports     : {len(session.reports)}  "
          f"(session.clean = {session.clean})")
    print()
    print("first recorded scheduling events:")
    for event in buffer.history.full_trace[:6]:
        print(f"   {event}")
    print()
    print("final scheduling state:")
    print(buffer.snapshot().describe())

    print()
    print("=== same workload, injected mutual-exclusion fault " + "=" * 13)
    # On its second opportunity, a contended Enter is admitted although the
    # monitor is occupied (taxonomy fault I.a.1).
    hooks = TriggeredHooks("enter_despite_owner", fire_at=2)
    buffer, session, __ = run(hooks)
    print(f"perturbation fired : {hooks.fired} time(s) on pids "
          f"{hooks.affected}")
    print(f"fault reports      : {len(session.reports)}")
    for report in session.reports[:4]:
        print(f"   {report}")
    print()
    suspects = sorted(
        {fault.label for fault in session.implicated_faults()}
    )
    print(f"implicated fault classes: {suspects}")


if __name__ == "__main__":
    main()
