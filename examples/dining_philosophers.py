#!/usr/bin/env python3
"""Dining philosophers two ways: a correct monitor vs a deadlocking protocol.

Part 1 runs Hoare's fork-table monitor (both forks acquired atomically,
Mesa signalling) — every philosopher finishes every meal, and the attached
detector stays silent.

Part 2 runs the classic broken protocol — each fork is its own allocator
monitor and every philosopher grabs left-then-right.  The simulation
kernel detects the circular wait as a global deadlock, and Algorithm-3's
Tlimit sweep names the forks that were acquired but never released.

Run:  python examples/dining_philosophers.py
"""

from repro import (
    DeadlockDetector,
    Delay,
    DetectorConfig,
    FaultDetector,
    FaultStatistics,
    ForkTable,
    HistoryDatabase,
    RandomPolicy,
    SimKernel,
    SingleResourceAllocator,
    detector_process,
    philosopher,
)
from repro.apps.dining_philosophers import greedy_philosopher

SEATS = 5


def part1_monitor_table():
    print("=== part 1: Hoare's fork-table monitor " + "=" * 26)
    kernel = SimKernel(RandomPolicy(seed=11), on_deadlock="stop")
    table = ForkTable(kernel, SEATS, history=HistoryDatabase())
    detector = FaultDetector(
        table, DetectorConfig(interval=0.5, tmax=20.0, tio=20.0, tlimit=20.0)
    )
    for seat in range(SEATS):
        kernel.spawn(philosopher(table, seat, meals=5), f"philosopher-{seat}")
    kernel.spawn(detector_process(detector), "detector")
    result = kernel.run(until=100)
    kernel.raise_failures()
    print(f"meals eaten      : {table.meals}")
    print(f"deadlocked       : {result.deadlocked}")
    print(f"detector reports : {len(detector.reports)} "
          f"(clean = {detector.clean})")
    print()


def part2_greedy_deadlock():
    print("=== part 2: greedy left-then-right protocol " + "=" * 21)
    kernel = SimKernel(on_deadlock="stop")  # FIFO makes the cycle certain
    forks = []
    detectors = []
    for index in range(SEATS):
        fork = SingleResourceAllocator(
            kernel, history=HistoryDatabase(), name=f"fork{index}"
        )
        detector = FaultDetector(
            fork, DetectorConfig(interval=0.5, tmax=None, tio=None, tlimit=3.0)
        )
        forks.append(fork)
        detectors.append(detector)
        kernel.spawn(detector_process(detector), f"detector-{index}")
    for seat in range(SEATS):
        kernel.spawn(
            greedy_philosopher(forks, seat, meals=5, think=0.1),
            f"greedy-{seat}",
        )
    result = kernel.run(until=30)
    print(f"kernel deadlock detected : {result.deadlocked or result.live != ()}")
    held = [fork.name for fork in forks if fork.busy]
    print(f"forks still held         : {held}")
    print()
    print("Algorithm-3 Tlimit reports (resource acquired, never released):")
    shown = 0
    for detector in detectors:
        for report in detector.reports:
            if report.rule_id == "ST-8c" and shown < SEATS:
                print(f"   {report}")
                shown += 1
                break
    labels = sorted(
        {
            fault.label
            for detector in detectors
            for fault in detector.implicated_faults()
        }
    )
    print(f"implicated fault classes : {labels}")
    print()
    print("wait-for graph analysis (cross-monitor extension):")
    deadlocks = DeadlockDetector(detectors)
    for report in deadlocks.check():
        print(f"   {report}")
    print()
    print("fault frequency statistics:")
    stats = FaultStatistics.from_detectors(detectors)
    stats.record_all(deadlocks.reports)
    print(stats.render(top=4))


if __name__ == "__main__":
    part1_monitor_table()
    part2_greedy_deadlock()
