#!/usr/bin/env python3
"""One detection engine auditing several monitors at once.

A dining-philosophers fork table, a shared printer allocator and a bounded
buffer all run on the same kernel.  Instead of three ``FaultDetector``
processes (three world-stops per checking interval), every monitor
registers with a single :class:`DetectionEngine`: one batched checkpoint
per interval snapshots and checks all three back to back, and the engine
aggregates the findings per monitor.

One philosopher misbehaves — it releases the printer it never requested —
so the audit shows a real level-III fault attributed to the right monitor
while the other monitors stay clean.

The buffer records through a :class:`BoundedHistory` ring buffer, the
production-style sink: if the engine ever fell behind, the buffer's window
would drop oldest events (visibly, via the drop counters) instead of
growing without bound.

A fourth monitor misbehaves in a different way: its *checker* is broken
(the rule evaluator raises for its first few checkpoints).  The engine's
per-monitor circuit breaker quarantines it — the other monitors keep
getting checked every interval — probes it after the cooldown, and
re-admits it once the probe succeeds.  The printed quarantine lifecycle
shows every breaker transition.

Run:  python examples/multi_monitor_audit.py
"""

from repro import (
    BoundedBuffer,
    BoundedHistory,
    Delay,
    DetectionEngine,
    DetectorConfig,
    ForkTable,
    HistoryDatabase,
    RandomPolicy,
    SimKernel,
    SingleResourceAllocator,
    engine_process,
    philosopher,
)
from repro.injection import sabotage_entry

SEATS = 4


def main() -> int:
    kernel = SimKernel(RandomPolicy(seed=3), on_deadlock="stop")
    table = ForkTable(kernel, SEATS, history=HistoryDatabase())
    printer = SingleResourceAllocator(
        kernel, history=HistoryDatabase(), name="printer"
    )
    buffer = BoundedBuffer(
        kernel, capacity=3, history=BoundedHistory(capacity=256)
    )
    scanner = SingleResourceAllocator(
        kernel, history=HistoryDatabase(), name="scanner"
    )

    engine = DetectionEngine(
        kernel,
        DetectorConfig(
            interval=0.5,
            tmax=30.0,
            tio=30.0,
            tlimit=30.0,
            # Tight quarantine so the breaker's full lifecycle fits the run.
            breaker_failure_threshold=2,
            breaker_cooldown=1.2,
        ),
    )
    for target in (table, printer, buffer):
        engine.register(target)
    # The scanner's *checker* is broken: its first three checks raise.
    scanner_entry = engine.register(scanner)
    sabotage_entry(scanner_entry, failures=3)

    # Healthy load on all three monitors...
    for seat in range(SEATS):
        kernel.spawn(philosopher(table, seat, meals=4), f"phil-{seat}")

    def printing_user(index):
        for __ in range(3):
            yield Delay(0.2 * (index + 1))
            yield from printer.request()
            yield Delay(0.1)
            yield from printer.release()

    for index in range(2):
        kernel.spawn(printing_user(index), f"print-user-{index}")

    def scanning_user():
        for __ in range(8):
            yield Delay(0.4)
            yield from scanner.request()
            yield Delay(0.1)
            yield from scanner.release()

    kernel.spawn(scanning_user(), "scan-user")

    def producer():
        for item in range(10):
            yield Delay(0.15)
            yield from buffer.send(item)

    def consumer():
        for __ in range(10):
            yield Delay(0.15)
            yield from buffer.receive()

    kernel.spawn(producer(), "producer")
    kernel.spawn(consumer(), "consumer")

    # ...plus one user-process bug: Release with no preceding Request.
    def rude_philosopher():
        yield Delay(1.0)
        yield from printer.release()

    kernel.spawn(rude_philosopher(), "rude")

    kernel.spawn(engine_process(engine), "detection-engine")
    kernel.run(until=20)
    kernel.raise_failures()

    print(f"engine: {len(engine.monitors)} monitors, "
          f"{engine.checkpoints_run} batched checkpoints, "
          f"{engine.atomic_sections} atomic sections\n")
    for label, reports in engine.reports_by_monitor().items():
        verdict = "clean" if not reports else f"{len(reports)} report(s)"
        print(f"  {label:10s} {verdict}")
        for report in reports:
            print(f"      {report}")
    print(f"\nimplicated fault classes: "
          f"{sorted(fault.label for fault in engine.implicated_faults())}")
    sink = buffer.history
    print(f"buffer sink: {sink!r}")

    print("\nquarantine lifecycle of the broken checker:")
    breaker = scanner_entry.breaker
    for time, state in breaker.transitions:
        print(f"  t={time:5.2f}  -> {state.value}")
    print(f"  {scanner_entry.quarantine_record().render()}")
    lifecycle_ok = (
        breaker.times_opened >= 1
        and breaker.times_reclosed >= 1
        and not scanner_entry.quarantined
    )
    print(
        "  broken checker quarantined and re-admitted"
        if lifecycle_ok
        else "  UNEXPECTED: breaker lifecycle incomplete"
    )
    return 0 if (not engine.clean and lifecycle_ok) else 1


if __name__ == "__main__":
    raise SystemExit(main())
