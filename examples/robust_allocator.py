#!/usr/bin/env python3
"""Resource allocation with real-time calling-order checking.

The paper's resource-access-right allocator declares the partial order
``(Request ; Release)*`` in its monitor declaration; Algorithm-3 checks
every process's call sequence against it *in real time* — the one fault
level the paper requires to be caught immediately rather than at the next
periodic checkpoint.

This example runs three well-behaved users alongside three buggy ones,
each committing one user-process-level fault of Section 2.2:

* III.a — releasing a resource it never acquired,
* III.b — acquiring and never releasing (caught by the Tlimit sweep),
* III.c — re-acquiring while already holding (self-deadlock).

Run:  python examples/robust_allocator.py
"""

from repro import (
    Delay,
    DetectorConfig,
    FaultDetector,
    HistoryDatabase,
    RandomPolicy,
    SimKernel,
    SingleResourceAllocator,
    detector_process,
)


def honest_user(allocator, index):
    for __ in range(4):
        yield Delay(0.1 + 0.05 * index)
        yield from allocator.request()
        yield Delay(0.2)  # use the resource (outside the monitor)
        yield from allocator.release()


def release_without_request(allocator):
    yield Delay(0.5)
    yield from allocator.release()  # fault III.a


def never_release(allocator):
    yield Delay(0.8)
    yield from allocator.request()
    yield Delay(1e9)  # fault III.b: holds forever


def double_request(allocator):
    yield Delay(1.1)
    yield from allocator.request()
    yield Delay(0.1)
    yield from allocator.request()  # fault III.c: self-deadlock


def main():
    kernel = SimKernel(RandomPolicy(seed=3), on_deadlock="stop")
    allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
    detector = FaultDetector(
        allocator,
        DetectorConfig(interval=0.5, tmax=None, tio=None, tlimit=5.0),
    )
    print("monitor declaration (the paper's Section 4 form):")
    print(allocator.declaration.render())
    print()

    for index in range(3):
        kernel.spawn(honest_user(allocator, index), f"honest-{index}")
    kernel.spawn(release_without_request(allocator), "buggy-IIIa")
    kernel.spawn(never_release(allocator), "buggy-IIIb")
    kernel.spawn(double_request(allocator), "buggy-IIIc")
    kernel.spawn(detector_process(detector), "detector")
    kernel.run(until=30)

    print(f"grants handed out : {allocator.grants}")
    print(f"fault reports     : {len(detector.reports)}")
    print()
    seen_rules = {}
    for report in detector.reports:
        seen_rules.setdefault(report.rule_id, report)
    for rule_id in sorted(seen_rules):
        print(f"[{rule_id}] {seen_rules[rule_id].message}")
    print()
    labels = sorted({f.label for f in detector.implicated_faults()})
    print(f"implicated fault classes: {labels}")
    expected = {"III.a", "III.b", "III.c"}
    print(f"all three user-process faults caught: "
          f"{expected.issubset(set(labels))}")


if __name__ == "__main__":
    main()
