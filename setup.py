"""Legacy shim: lets pip perform editable installs without the wheel package."""
from setuptools import setup

setup()
