"""A1 — ablation: windowed ST checking vs full-trace FD checking.

Section 3.3's justification for the checking-list formulation is space:
"only the states at the last checking time and the current checking time
are recorded ... most of the information can be removed after being used."
This ablation runs the same workload both ways and verifies

* the verdicts agree (clean runs are clean both ways; an injected fault is
  found both ways), and
* the windowed checker's live memory is bounded by the checking window
  while the full trace grows with the run.
"""

from __future__ import annotations

import pytest

from repro.apps import BoundedBuffer
from repro.detection import (
    DetectorConfig,
    FaultDetector,
    check_full_trace,
    detector_process,
)
from repro.history import HistoryDatabase
from repro.injection import TriggeredHooks
from repro.kernel import RandomPolicy, SimKernel
from tests.conftest import consumer, producer


def run_workload(hooks=None, *, items=60, interval=0.5):
    kernel = SimKernel(RandomPolicy(seed=0), on_deadlock="stop")
    history = HistoryDatabase(retain_full_trace=True)
    buffer = BoundedBuffer(
        kernel, capacity=3, history=history, hooks=hooks, service_time=0.02
    )
    if hooks is not None:
        hooks.core = buffer.monitor.core
    detector = FaultDetector(
        buffer, DetectorConfig(interval=interval, tmax=100.0, tio=100.0)
    )
    for __ in range(2):
        kernel.spawn(producer(buffer, items, delay=0.03))
        kernel.spawn(consumer(buffer, items, delay=0.03))
    kernel.spawn(detector_process(detector), "detector")
    kernel.run(until=200, max_steps=5_000_000)
    return buffer, history, detector


def test_verdict_agreement_clean(benchmark):
    def both():
        buffer, history, detector = run_workload()
        fd_reports = check_full_trace(
            buffer.declaration,
            history.full_trace,
            final_state=buffer.snapshot(),
            tmax=100.0,
            tio=100.0,
        )
        return detector.clean, not fd_reports

    st_clean, fd_clean = benchmark.pedantic(both, rounds=1, iterations=1)
    assert st_clean and fd_clean


def test_verdict_agreement_faulty(benchmark):
    def both():
        hooks = TriggeredHooks("enter_despite_owner", fire_at=2)
        buffer, history, detector = run_workload(hooks)
        assert hooks.fired == 1
        fd_reports = check_full_trace(
            buffer.declaration,
            history.full_trace,
            final_state=buffer.snapshot(),
            tmax=100.0,
            tio=100.0,
        )
        return detector.clean, not fd_reports

    st_clean, fd_clean = benchmark.pedantic(both, rounds=1, iterations=1)
    assert not st_clean and not fd_clean


def test_pruned_memory_bounded_by_window(benchmark):
    """Peak live events (window) must be far below the total event count."""

    def measure():
        __, history, __det = run_workload(items=120, interval=0.5)
        return history.peak_live_events, history.total_recorded

    peak, total = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert total >= 400
    assert peak < total / 4, (
        f"pruning ineffective: window peak {peak} vs total {total}"
    )
