"""Shared configuration for the benchmark suite.

Every file in this directory regenerates one artefact of the paper's
evaluation (see DESIGN.md section 4 for the experiment index).  Run with::

    pytest benchmarks/ --benchmark-only

Full-resolution tables (all six checking intervals, more repeats) are
produced by the standalone harnesses::

    python -m repro.bench.overhead
    python -m repro.bench.coverage
"""

import pytest


@pytest.fixture(scope="session")
def campaign_outcomes():
    """Run the full 21-campaign robustness experiment once per session."""
    from repro.injection import run_all_campaigns

    return run_all_campaigns(seed=0)
