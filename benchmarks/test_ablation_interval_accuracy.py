"""A2 — ablation: checking interval vs detection latency.

Section 3.3: "Although this post-checking is less accurate ... by properly
defining the checking frequency T, the checking can be made more accurate.
When T = 1, the checking becomes real-time."

Reproduced: a fault injected at a known instant is reported within one
checking period, so the measured detection latency grows with T.
"""

from __future__ import annotations

import pytest

from repro.apps import BoundedBuffer
from repro.detection import DetectorConfig, FaultDetector, detector_process
from repro.history import HistoryDatabase
from repro.kernel import Delay, RandomPolicy, SimKernel

#: The saboteur wedges the monitor at this instant (terminates inside).
INJECTION_TIME = 1.0
TMAX = 0.5


def detection_latency(interval: float) -> float:
    kernel = SimKernel(RandomPolicy(seed=0), on_deadlock="stop")
    buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
    detector = FaultDetector(
        buffer, DetectorConfig(interval=interval, tmax=TMAX, tio=100.0)
    )

    def saboteur():
        yield Delay(INJECTION_TIME)
        yield from buffer.monitor.enter("Send")
        # terminates inside: fault I.c.4

    def ticker():
        yield Delay(60.0)

    kernel.spawn(saboteur(), "saboteur")
    kernel.spawn(ticker(), "ticker")
    kernel.spawn(detector_process(detector), "detector")
    kernel.run(until=40.0)
    assert detector.reports, f"fault undetected at interval {interval}"
    first = min(report.detected_at for report in detector.reports)
    return first - (INJECTION_TIME + TMAX)  # latency past earliest possible


@pytest.mark.parametrize("interval", (0.25, 1.0, 4.0))
def test_fault_detected_within_one_period(benchmark, interval):
    latency = benchmark.pedantic(
        lambda: detection_latency(interval), rounds=1, iterations=1
    )
    assert 0 <= latency <= interval + 1e-9, (
        f"latency {latency:.3f} exceeds one checking period {interval}"
    )


def test_latency_grows_with_interval(benchmark):
    def sweep():
        return [detection_latency(interval) for interval in (0.25, 4.0)]

    tight, loose = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert loose > tight
