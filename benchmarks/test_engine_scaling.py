"""E3 — engine scaling: batched checkpoints vs per-monitor detectors.

Regenerates the acceptance grid (fleet sizes 1/4/16) on the simulation
kernel and asserts the amortisation claims:

* the engine enters exactly one atomic (world-stop) section per checking
  interval regardless of fleet size, while per-monitor detectors enter one
  per monitor per interval;
* the engine's checkpoint overhead therefore grows *sublinearly* in the
  number of monitors, where the detector baseline grows linearly.
"""

from __future__ import annotations

import pytest

from repro.bench.engine_scaling import SCALING_CONFIG, measure_scaling
from repro.workloads import WorkloadSpec

SPEC = WorkloadSpec(processes=2, operations=20, think_time=0.05)


@pytest.mark.parametrize("monitors", (1, 4, 16))
def test_engine_runs_one_atomic_section_per_interval(benchmark, monitors):
    row = benchmark.pedantic(
        lambda: measure_scaling(monitors, "engine", backend="sim", spec=SPEC),
        rounds=1,
        iterations=1,
    )
    assert row.checkpoints > 0
    assert row.atomic_sections == row.checkpoints


def test_detector_sections_scale_linearly_engine_constant(benchmark):
    def measure():
        return {
            (count, mode): measure_scaling(count, mode, backend="sim", spec=SPEC)
            for count in (1, 4, 16)
            for mode in ("detectors", "engine")
        }

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for count in (4, 16):
        det = rows[(count, "detectors")]
        eng = rows[(count, "engine")]
        # Linear in the baseline: N sections per interval...
        assert det.atomic_sections == count * eng.atomic_sections
        # ...constant in the engine: one section per interval.
        assert eng.atomic_sections == eng.checkpoints
        assert eng.atomic_sections < det.atomic_sections


def test_engine_checkpoint_overhead_sublinear(benchmark):
    """Growing the fleet 16x must cost the engine < 16x checking time."""

    def measure():
        small = measure_scaling(1, "engine", backend="sim", spec=SPEC)
        large = measure_scaling(16, "engine", backend="sim", spec=SPEC)
        return small, large

    small, large = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert small.checking_seconds > 0
    assert large.checking_seconds < 16 * small.checking_seconds
