"""Throughput micro-benchmarks of the individual layers.

Not a paper artefact — these pin the per-operation costs the Table-1
ratios are built from and catch accidental complexity regressions in the
kernel step loop, the monitor transition path and the checking-list
replay.
"""

from __future__ import annotations

import pytest

from repro.detection.fd_rules import empty_initial_state
from repro.detection.replay import ReplayMachine
from repro.history import HistoryDatabase
from repro.history.events import enter_event, signal_exit_event
from repro.kernel import Delay, SimKernel, Yield
from repro.monitor import MonitorCore, MonitorDeclaration, MonitorType


def test_kernel_step_throughput(benchmark):
    """Scheduler steps per second over a pool of yielding processes."""

    def run_pool():
        kernel = SimKernel()

        def spinner():
            for __ in range(200):
                yield Yield()

        for __ in range(10):
            kernel.spawn(spinner())
        kernel.run(max_steps=10_000)
        return kernel.steps

    steps = benchmark(run_pool)
    assert steps >= 2000


def test_kernel_timer_throughput(benchmark):
    """Timer scheduling/expiry throughput (heap discipline)."""

    def run_timers():
        kernel = SimKernel()

        def sleeper():
            for __ in range(100):
                yield Delay(0.001)

        for __ in range(10):
            kernel.spawn(sleeper())
        result = kernel.run()
        return result.end_time

    end_time = benchmark(run_timers)
    assert end_time == pytest.approx(0.1)


def test_monitor_transition_throughput(benchmark):
    """Enter/exit pairs per second through the bare core (no kernel)."""
    declaration = MonitorDeclaration(
        name="m",
        mtype=MonitorType.OPERATION_MANAGER,
        procedures=("Op",),
        conditions=("c",),
    )
    clock = {"t": 0.0}

    def now():
        clock["t"] += 1e-6
        return clock["t"]

    core = MonitorCore(declaration, now=now, history=HistoryDatabase())

    def enter_exit_batch():
        for __ in range(1000):
            core.enter(1, "Op")
            core.exit(1)

    benchmark(enter_exit_batch)
    assert core.idle


def test_replay_throughput(benchmark):
    """Checking-list replay events per second (Algorithm-1 Step 1)."""
    declaration = MonitorDeclaration(
        name="m",
        mtype=MonitorType.OPERATION_MANAGER,
        procedures=("Op",),
        conditions=("c",),
    )
    events = []
    seq = 0
    for round_index in range(500):
        time = round_index * 0.01
        events.append(enter_event(seq, 1, "Op", time, 1))
        seq += 1
        events.append(signal_exit_event(seq, 1, "Op", time + 0.005, 0))
        seq += 1
    trace = tuple(events)

    def replay():
        machine = ReplayMachine(declaration, empty_initial_state(declaration))
        machine.replay(trace)
        return machine

    machine = benchmark(replay)
    assert machine.violations == []
