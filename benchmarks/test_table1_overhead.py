"""E1 — Table 1: detection overhead vs checking interval (thread kernel).

The paper reports overhead ratios (augmented / plain monitor-operation
time) of roughly 7.4–7.6 at T = 0.5 s falling to 4.0–4.2 at T = 3.0 s,
similar across the three monitor types.  The reproduced *shape*:

* every ratio is > 1 (the extension is never free), and
* the endpoint ratio at T = 0.5 s exceeds the ratio at T = 3.0 s
  (aggregated across monitor types — more frequent checking costs more).

Absolute magnitudes differ from the 2001 JVM prototype; EXPERIMENTS.md
records the measured grid next to the paper's numbers.
"""

from __future__ import annotations

import pytest

from repro.bench.overhead import measure_overhead
from repro.workloads import WorkloadSpec

#: Smaller than the standalone harness so the suite stays quick; the shape
#: is robust at this size.
SPEC = WorkloadSpec(processes=4, operations=80, think_time=0.05)
SCENARIOS = ("coordinator", "allocator", "manager")
ENDPOINTS = (0.5, 3.0)


@pytest.fixture(scope="module")
def ratio_grid():
    grid: dict[tuple[str, float], float] = {}
    for scenario in SCENARIOS:
        for interval in ENDPOINTS:
            row = measure_overhead(
                scenario,
                interval,
                backend="threads",
                spec=SPEC,
                repeats=3,
            )
            grid[(scenario, interval)] = row.ratio
    return grid


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("interval", ENDPOINTS)
def test_overhead_cell(benchmark, scenario, interval):
    """Benchmark one Table-1 cell and assert the extension costs > 1x."""
    row = benchmark.pedantic(
        lambda: measure_overhead(
            scenario, interval, backend="threads", spec=SPEC, repeats=1
        ),
        rounds=1,
        iterations=1,
    )
    assert row.ratio > 1.0, (
        f"{scenario} @ T={interval}: extension measured cheaper than the "
        f"plain construct (ratio={row.ratio:.3f})"
    )
    assert row.events > 0
    assert row.checkpoints > 0


def test_overhead_decreases_with_interval(benchmark, ratio_grid):
    """The paper's headline trend: larger T, lower overhead."""

    def aggregate():
        tight = sum(ratio_grid[(s, 0.5)] for s in SCENARIOS) / len(SCENARIOS)
        loose = sum(ratio_grid[(s, 3.0)] for s in SCENARIOS) / len(SCENARIOS)
        return tight, loose

    tight, loose = benchmark.pedantic(aggregate, rounds=1, iterations=1)
    assert tight > loose, (
        f"expected overhead at T=0.5s ({tight:.3f}) to exceed overhead at "
        f"T=3.0s ({loose:.3f})"
    )
    assert tight > 1.0 and loose > 1.0
