"""E2 — the robustness experiment of Section 4.

Paper: "Faults of different kinds as classified in Section 3.2 are
injected randomly for evaluating the coverage of the fault detection
algorithms.  The results show that all injected faults are detected."

Reproduced: all 21 taxonomy campaigns are activated and detected
(21/21 coverage), and level-III faults are caught by the real-time rules.
"""

from __future__ import annotations

import pytest

from repro.detection.faults import FaultClass, FaultLevel
from repro.injection import run_campaign


def test_full_fault_coverage(benchmark, campaign_outcomes):
    """The paper's headline robustness claim: 21/21 detected."""

    def score():
        activated = sum(1 for o in campaign_outcomes.values() if o.activated)
        detected = sum(1 for o in campaign_outcomes.values() if o.detected)
        return activated, detected

    activated, detected = benchmark.pedantic(score, rounds=1, iterations=1)
    missed = [
        outcome.fault.label
        for outcome in campaign_outcomes.values()
        if not outcome.detected
    ]
    assert activated == 21, f"only {activated}/21 campaigns activated"
    assert detected == 21, f"missed: {missed}"


def test_level3_faults_detected_in_real_time(benchmark, campaign_outcomes):
    """User-process-level faults must be flagged by the per-event rules."""

    def realtime_rules():
        hits = {}
        for fault in FaultClass.at_level(FaultLevel.USER_PROCESS):
            outcome = campaign_outcomes[fault]
            hits[fault.label] = [
                rule for rule in outcome.rules if rule.startswith("ST-8")
            ]
        return hits

    hits = benchmark.pedantic(realtime_rules, rounds=1, iterations=1)
    for label, rules in hits.items():
        assert rules, f"{label} was not caught by a real-time ST-8 rule"


@pytest.mark.parametrize(
    "fault",
    [
        FaultClass.ENTER_MUTEX_VIOLATED,
        FaultClass.SEND_EXCEEDS_CAPACITY,
        FaultClass.REQUEST_WHILE_HOLDING,
    ],
    ids=lambda fault: fault.label,
)
def test_campaign_cost(benchmark, fault):
    """Wall-clock cost of one representative campaign per taxonomy level."""
    outcome = benchmark.pedantic(
        lambda: run_campaign(fault, seed=0), rounds=1, iterations=1
    )
    assert outcome.detected
