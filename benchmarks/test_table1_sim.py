"""E1-sim — Table 1 analogue on the deterministic simulation kernel.

Same workloads and ratio definition as ``test_table1_overhead`` but on the
virtual-time kernel: no world-stop stalls, so this isolates the pure CPU
cost of recording + checking.  The asserted shape is weaker (ratio > 1;
checking time decreases with T) because without stalls the T-dependent
share of the cost is only the per-checkpoint fixed work.
"""

from __future__ import annotations

import pytest

from repro.bench.overhead import measure_overhead
from repro.workloads import WorkloadSpec

SPEC = WorkloadSpec(processes=4, operations=120, think_time=0.05)


@pytest.mark.parametrize("scenario", ("coordinator", "allocator", "manager"))
def test_sim_overhead_ratio_positive(benchmark, scenario):
    row = benchmark.pedantic(
        lambda: measure_overhead(
            scenario, 1.0, backend="sim", spec=SPEC, repeats=3
        ),
        rounds=1,
        iterations=1,
    )
    assert row.ratio > 1.0
    assert row.base_seconds > 0


def test_sim_checking_time_decreases_with_interval(benchmark):
    """Fewer checkpoints -> strictly less time inside the checker."""

    def measure():
        tight = measure_overhead(
            "coordinator", 0.25, backend="sim", spec=SPEC, repeats=3
        )
        loose = measure_overhead(
            "coordinator", 3.0, backend="sim", spec=SPEC, repeats=3
        )
        return tight, loose

    tight, loose = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert tight.checkpoints > loose.checkpoints
    assert tight.checking_seconds > loose.checking_seconds
