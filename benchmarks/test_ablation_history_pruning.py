"""A3 — ablation: history pruning keeps detector memory bounded.

The history database drops a window's events once the checkpoint consumed
them.  Over a long run, live memory must stay flat (bounded by the busiest
window) while the total recorded volume keeps growing — the property that
makes continuous monitoring feasible.
"""

from __future__ import annotations

import pytest

from repro.apps import BoundedBuffer
from repro.detection import DetectorConfig, FaultDetector, detector_process
from repro.history import HistoryDatabase
from repro.kernel import RandomPolicy, SimKernel
from tests.conftest import consumer, producer


def run_for(items: int, *, retain: bool):
    kernel = SimKernel(RandomPolicy(seed=0), on_deadlock="stop")
    history = HistoryDatabase(retain_full_trace=retain)
    buffer = BoundedBuffer(
        kernel, capacity=3, history=history, service_time=0.01
    )
    detector = FaultDetector(
        buffer, DetectorConfig(interval=0.5, tmax=None, tio=None)
    )
    for __ in range(2):
        kernel.spawn(producer(buffer, items, delay=0.02))
        kernel.spawn(consumer(buffer, items, delay=0.02))
    kernel.spawn(detector_process(detector), "detector")
    kernel.run(until=1000, max_steps=20_000_000)
    return history


def test_live_memory_flat_as_run_grows(benchmark):
    """4x the workload must not grow the live window noticeably."""

    def measure():
        short = run_for(50, retain=False)
        long = run_for(200, retain=False)
        return short, long

    short, long = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert long.total_recorded >= 4 * short.total_recorded * 0.9
    # The live window depends on per-window activity, not run length.
    assert long.peak_live_events <= short.peak_live_events * 2

    # and at the end, consumed events are gone entirely:
    assert long.live_events <= long.peak_live_events


def test_retained_trace_grows_linearly(benchmark):
    """Without pruning (retain_full_trace) memory tracks the run length —
    the cost the paper's strategy avoids."""

    def measure():
        short = run_for(50, retain=True)
        long = run_for(200, retain=True)
        return len(short.full_trace), len(long.full_trace)

    short_len, long_len = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert long_len >= 3.5 * short_len


def test_recording_throughput(benchmark):
    """Micro-benchmark: events recorded per second through the database."""
    from repro.history.events import enter_event

    db = HistoryDatabase()
    db.open(
        __import__(
            "repro.detection.fd_rules", fromlist=["empty_initial_state"]
        ).empty_initial_state(
            BoundedBuffer(SimKernel(), capacity=3).declaration
        )
    )

    def record_batch():
        for index in range(1000):
            db.record(enter_event(db.next_seq(), 1, "Send", 0.0, 1))
        # prune as a checkpoint would
        from repro.history.states import SchedulingState

        db.cut(
            SchedulingState(
                time=db.last_state.time + 1.0,
                entry_queue=(),
                cond_queues={},
                running=(),
            )
        )

    benchmark(record_batch)
